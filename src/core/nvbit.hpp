/**
 * @file
 * NVBit user-level API (the equivalent of the paper's nvbit.h).
 *
 * An "NVBit tool" subclasses NvbitTool, registers the PTX source of
 * its device instrumentation functions, and is injected into an
 * application with nvbit::runApp() — the in-process equivalent of
 * LD_PRELOADing the tool's shared library (paper Figure 2).
 *
 * API categories (paper Section 4):
 *   - Callback API:        NvbitTool virtual methods
 *   - Inspection API:      nvbit_get_instrs / nvbit_get_basic_blocks /
 *                          nvbit_get_related_functions / class Instr
 *   - Instrumentation API: nvbit_insert_call / nvbit_add_call_arg_* /
 *                          nvbit_remove_orig
 *   - Control API:         nvbit_enable_instrumented /
 *                          nvbit_reset_instrumented
 *   - Device API:          nvbit_read_reg / nvbit_write_reg /
 *                          nvbit_read_pred / nvbit_write_pred
 *                          (callable from tool device functions in PTX)
 */
#ifndef NVBIT_CORE_NVBIT_HPP
#define NVBIT_CORE_NVBIT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instr.hpp"
#include "driver/callback.hpp"

namespace nvbit {

using cudrv::CUcontext;
using cudrv::CUfunction;
using cudrv::CUresult;
using cudrv::CUdeviceptr;
using cudrv::CallbackId;

/** Injection point relative to the instrumented instruction. */
enum ipoint_t { IPOINT_BEFORE = 0, IPOINT_AFTER = 1 };

/**
 * Base class for NVBit tools.  Override the callbacks you need; call
 * exportDeviceFunctions() from the constructor to register the PTX
 * source of the tool's device functions (the analogue of compiling a
 * .cu tool with NVCC and marking functions NVBIT_EXPORT_DEV_FUNCTION).
 */
class NvbitTool
{
  public:
    virtual ~NvbitTool() = default;

    /** Called once before the application starts. */
    virtual void nvbit_at_init() {}

    /** Called once after the application terminates. */
    virtual void nvbit_at_term() {}

    /** Called when a CUDA context is created. */
    virtual void nvbit_at_ctx_init(CUcontext) {}

    /** Called when a CUDA context is destroyed. */
    virtual void nvbit_at_ctx_term(CUcontext) {}

    /**
     * Called at entry (is_exit=false) and exit (is_exit=true) of every
     * CUDA driver API invocation.
     */
    virtual void
    nvbit_at_cuda_driver_call(CUcontext /*ctx*/, bool /*is_exit*/,
                              CallbackId /*cbid*/, const char * /*name*/,
                              void * /*params*/, CUresult * /*status*/)
    {}

    /**
     * Called when a kernel launch raises a device exception, after the
     * core has attributed the fault (origin tool vs app, app-level pc)
     * — see docs/exceptions.md.  The record stays queryable through
     * cuCtxGetExceptionInfo until cuDevicePrimaryCtxReset.
     */
    virtual void nvbit_at_exception(CUcontext /*ctx*/,
                                    const cudrv::CUexceptionInfo &)
    {}

    /** PTX source of the tool's device functions (may be empty). */
    const std::string &deviceFunctionSource() const { return dev_src_; }

  protected:
    /** Register PTX source containing the tool's device functions. */
    void
    exportDeviceFunctions(const std::string &ptx_source)
    {
        dev_src_ += ptx_source;
        dev_src_ += "\n";
    }

  private:
    std::string dev_src_;
};

// --- Application runner ------------------------------------------------

/**
 * Run @p app_main with @p tool injected: registers the driver
 * interposer, fires nvbit_at_init / nvbit_at_term, and tears down the
 * driver afterwards.  Only one tool can be injected at a time (as with
 * LD_PRELOAD in the paper).
 */
void runApp(NvbitTool &tool, const std::function<void()> &app_main);

// --- Inspection API ------------------------------------------------------

/** @return the instructions of @p func in program order (cached). */
const std::vector<Instr *> &nvbit_get_instrs(CUcontext ctx,
                                             CUfunction func);

/**
 * @return the instructions grouped into basic blocks.  When the
 * function contains indirect control flow (which defeats static basic
 * block construction), a single block holding the flat view is
 * returned, per the paper.
 */
std::vector<std::vector<Instr *>>
nvbit_get_basic_blocks(CUcontext ctx, CUfunction func);

/** @return functions potentially called by @p func (transitively). */
std::vector<CUfunction> nvbit_get_related_functions(CUcontext ctx,
                                                    CUfunction func);

/** @return the (mangled) name of @p func. */
const char *nvbit_get_func_name(CUcontext ctx, CUfunction func);

// --- Instrumentation API ---------------------------------------------------

/**
 * Inject device function @p dev_func_name before/after @p instr.
 * Multiple calls on the same instruction inject multiple functions in
 * insertion order.  Arguments are attached with the
 * nvbit_add_call_arg_* functions immediately after this call.
 */
void nvbit_insert_call(const Instr *instr, const char *dev_func_name,
                       ipoint_t where);

/** Pass the instruction's guard predicate value (0/1). */
void nvbit_add_call_arg_guard_pred_val(const Instr *instr);

/** Pass the value of a 32-bit register. */
void nvbit_add_call_arg_reg_val(const Instr *instr, int reg_num);

/** Pass a 32-bit immediate. */
void nvbit_add_call_arg_imm32(const Instr *instr, uint32_t value);

/** Pass a 64-bit immediate (consumes an aligned register pair). */
void nvbit_add_call_arg_imm64(const Instr *instr, uint64_t value);

/** Pass a 32-bit value loaded from constant bank @p bank at @p off. */
void nvbit_add_call_arg_cbank_val(const Instr *instr, int bank, int off);

/** Pass the active mask of the warp at the injection site. */
void nvbit_add_call_arg_active_mask(const Instr *instr);

/**
 * Remove the original instruction (paper: "the relocated original
 * instruction must also be converted into a NOP").  Used for
 * instruction emulation (Section 6.3).
 */
void nvbit_remove_orig(const Instr *instr);

// --- Control API -----------------------------------------------------------

/**
 * Select whether the instrumented or original version of @p func runs
 * at the next launch.  Swapping costs one device-memory copy of the
 * function's code bytes, as in the paper.
 */
void nvbit_enable_instrumented(CUcontext ctx, CUfunction func,
                               bool enable, bool apply_to_related = true);

/** Discard all instrumentation of @p func and restore original code. */
void nvbit_reset_instrumented(CUcontext ctx, CUfunction func);

// --- Inline-probe declaration (trace engine fast path) ---------------------

/**
 * Declared semantics of an inlinable instrumentation function.  A tool
 * that injects a device function whose whole effect is the canonical
 * counting pattern
 *
 *   P = popc(ballot(guard))        (or popc(active) without a guard arg)
 *   warp_counter   += scale                        (always)
 *   thread_counter += P * scale                    (when P != 0)
 *   (*table_ptr)[index] += P * scale               (when P != 0)
 *
 * can declare that shape up front.  When the trace engine is on
 * (GpuConfig::use_traces / NVBIT_SIM_TRACES) and a callsite's
 * arguments match the declaration, the simulator executes these
 * semantics directly at the callsite instead of interpreting the
 * save/marshal/call/restore trampoline — same tool-visible counters,
 * a fraction of the issue slots.  Callsites that do not match (extra
 * arguments, IPOINT_AFTER, nvbit_remove_orig) fall back to the
 * trampoline transparently, as does the whole path when the trace
 * engine is off.  Null/negative fields disable the respective term.
 */
struct nvbit_probe_desc {
    /** First argument is the guard predicate (added with
     *  nvbit_add_call_arg_guard_pred_val); P counts guard-passing
     *  lanes instead of all active lanes. */
    bool ballot_guard = false;
    const char *warp_counter = nullptr;   ///< tool global (u64)
    const char *thread_counter = nullptr; ///< tool global (u64)
    /** Tool global holding a device *pointer* to a u64 table. */
    const char *table_ptr = nullptr;
    int index_arg = -1; ///< arg position of the imm32 table index
    int scale_arg = -1; ///< arg position of an imm32 count multiplier
};

/** Declare @p dev_func_name (a tool device function) inlinable with
 *  the semantics of @p desc.  Call from the tool constructor, after
 *  exportDeviceFunctions. */
void nvbit_declare_inline_probe(const char *dev_func_name,
                                const nvbit_probe_desc &desc);

// --- Tool helpers ------------------------------------------------------------

/**
 * @return device address of a .global variable defined in the tool's
 * device-function PTX (the stand-in for __managed__ tool state).
 */
CUdeviceptr nvbit_tool_global(const char *name);

/** Read a tool global into host memory. */
void nvbit_read_tool_global(const char *name, void *out, size_t bytes);

/** Write a tool global from host memory. */
void nvbit_write_tool_global(const char *name, const void *in,
                             size_t bytes);

// --- JIT-overhead introspection (paper Section 5.2 / Figure 5) -------------

/**
 * Cumulative wall-clock cost of the six JIT-compilation components the
 * paper decomposes: (1) retrieving original GPU code, (2) disassembly,
 * (3) conversion to the API format, (4) user callback execution,
 * (5) code generation, (6) code swap.
 */
struct JitStats {
    uint64_t retrieve_ns = 0;
    uint64_t disassemble_ns = 0;
    uint64_t lift_ns = 0;
    uint64_t user_callback_ns = 0;
    uint64_t codegen_ns = 0;
    uint64_t swap_ns = 0;
    uint64_t swap_bytes = 0;
    uint64_t trampolines_generated = 0;
    uint64_t functions_instrumented = 0;

    uint64_t
    totalNs() const
    {
        return retrieve_ns + disassemble_ns + lift_ns +
               user_callback_ns + codegen_ns + swap_ns;
    }
};

/** @return cumulative JIT statistics since tool injection. */
const JitStats &nvbit_get_jit_stats();

/**
 * Ablation control (not part of the paper's API): when enabled,
 * trampolines save/restore the full register file instead of the
 * minimum derived from register-requirement analysis.  Used by the
 * save-bucket ablation benchmark to quantify the value of the paper's
 * "save only the minimum amount of general purpose registers" design.
 */
void nvbit_set_save_all_registers(bool enable);

} // namespace nvbit

#endif // NVBIT_CORE_NVBIT_HPP
