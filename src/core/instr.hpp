/**
 * @file
 * Class Instr: the user-facing abstraction of one machine (SASS-level)
 * instruction, mirroring the paper's Listing 4.
 *
 * "NVBit provides a class Instr that abstracts the actual machine
 *  level SASS instruction (which can vary across GPU families) by
 *  disassembling and transforming the instructions using a higher
 *  level user-friendly intermediate representation."
 */
#ifndef NVBIT_CORE_INSTR_HPP
#define NVBIT_CORE_INSTR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace nvbit {

/**
 * One disassembled instruction of a CUfunction.  Instances are owned
 * by the NVBit core (one-to-one with machine instructions) and stay
 * valid until the owning module is unloaded or the core is reset.
 */
class Instr
{
  public:
    /** Memory operation types (paper: Instr::GLOBAL etc.). */
    enum MemOpType : uint8_t {
        NONE = 0,
        LOCAL,
        GLOBAL,
        SHARED,
        CONSTANT
    };

    /** Operand types (paper: Instr::MREF etc.). */
    enum OperandType : uint8_t {
        IMM = 0,  ///< immediate: val[0] = value
        REG,      ///< register: val[0] = register number
        PRED,     ///< predicate: val[0] = predicate number
        CBANK,    ///< constant bank: val[0] = bank, val[1] = offset
        MREF      ///< memory ref: val[0] = base register, val[1] = offset
    };

    /** One decoded operand. */
    struct operand_t {
        OperandType type;
        int64_t val[2];
    };

    Instr(const isa::Instruction &decoded, uint32_t idx, uint64_t offset,
          size_t size_bytes);

    /** @return the full SASS disassembly string of this instruction. */
    const char *getSass() const { return sass_.c_str(); }

    /** @return index of this instruction within its function. */
    uint32_t getIdx() const { return idx_; }

    /** @return byte offset of this instruction within its function. */
    uint64_t getOffset() const { return offset_; }

    /** @return instruction size in bytes (8 on SM5x, 16 on SM7x). */
    size_t getSize() const { return size_; }

    /** @return the opcode mnemonic with modifiers, e.g. "LDG.64". */
    const char *getOpcode() const { return opcode_.c_str(); }

    /** @return number of decoded operands. */
    int getNumOperands() const
    {
        return static_cast<int>(operands_.size());
    }

    /** @return operand @p i (asserts on range). */
    const operand_t *getOperand(int i) const;

    /** @return the memory space accessed, or MemOpType::NONE. */
    MemOpType getMemOpType() const { return mem_op_; }

    bool isLoad() const { return decoded_.isLoad(); }
    bool isStore() const { return decoded_.isStore(); }

    /** @return true if the instruction has a guard predicate. */
    bool hasPred() const { return !decoded_.alwaysExecutes(); }

    /** @return guard predicate number (7 = PT). */
    int getPredNum() const { return decoded_.pred; }

    /** @return true if the guard predicate is negated. */
    bool isPredNeg() const { return decoded_.pred_neg; }

    /**
     * Source correlation (paper: "provided this information has not
     * been stripped from the application's binary").
     * @return true and fills file/line when line info is available.
     */
    bool getLineInfo(const char **file, uint32_t *line) const;

    /** Print the decoded form to stdout (debugging aid). */
    void printDecoded() const;

    /** @return the underlying architecture-level decoded instruction. */
    const isa::Instruction &decoded() const { return decoded_; }

    // Internal: set by the instruction lifter when debug info exists.
    void
    setLineInfo(const std::string *file, uint32_t line)
    {
        line_file_ = file;
        line_ = line;
    }

  private:
    void buildOperands();

    isa::Instruction decoded_;
    uint32_t idx_;
    uint64_t offset_;
    size_t size_;
    std::string sass_;
    std::string opcode_;
    MemOpType mem_op_ = NONE;
    std::vector<operand_t> operands_;
    const std::string *line_file_ = nullptr;
    uint32_t line_ = 0;
};

} // namespace nvbit

#endif // NVBIT_CORE_INSTR_HPP
