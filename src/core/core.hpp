/**
 * @file
 * The NVBit core (paper Section 5, Figure 3): Driver Interposer, Tool
 * Functions Loader, HAL, Instruction Lifter, Code Generator and Code
 * Loader/Unloader, behind the user API declared in nvbit.hpp.
 */
#ifndef NVBIT_CORE_CORE_HPP
#define NVBIT_CORE_CORE_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hal.hpp"
#include "core/nvbit.hpp"
#include "driver/internal.hpp"

namespace nvbit::core {

/** One requested injection (nvbit_insert_call + its arguments). */
struct CallRequest {
    enum class ArgKind : uint8_t {
        GuardPred,
        RegVal,
        Imm32,
        Imm64,
        CBank,
        ActiveMask
    };
    struct Arg {
        ArgKind kind;
        uint64_t v0 = 0;
        uint64_t v1 = 0;
    };

    std::string func_name;
    ipoint_t where = IPOINT_BEFORE;
    std::vector<Arg> args;
};

/** Instrumentation requests attached to one instruction. */
struct InstrRequests {
    std::vector<CallRequest> before;
    std::vector<CallRequest> after;
    bool remove_orig = false;

    bool
    empty() const
    {
        return before.empty() && after.empty() && !remove_orig;
    }
};

/** Per-CUfunction state kept by the core. */
struct FuncState {
    cudrv::CUfunction func = nullptr;
    cudrv::CUcontext ctx = nullptr;

    // Instruction Lifter products.
    bool lifted = false;
    std::vector<std::unique_ptr<Instr>> instrs;
    std::vector<Instr *> instr_ptrs;
    bool has_icf = false;
    bool bb_built = false;
    std::vector<std::vector<Instr *>> basic_blocks;

    // Instrumentation requests, by instruction index.
    std::map<uint32_t, InstrRequests> requests;
    /** Target of subsequent nvbit_add_call_arg_* calls. */
    CallRequest *last_call = nullptr;

    // Code Generator products.
    bool generated = false;
    bool dirty = false;
    std::vector<uint8_t> original_code;
    std::vector<uint8_t> instrumented_code;
    uint64_t tramp_base = 0;
    size_t tramp_bytes = 0;
    /**
     * Layout of each emitted trampoline within the bulk region, kept
     * for fault attribution: a faulting pc inside a span maps back to
     * the instrumented application instruction (`instr_idx`), and the
     * offset of the relocated original instruction distinguishes an
     * app-origin fault from one raised by injected tool machinery.
     */
    struct TrampSpan {
        size_t offset = 0;        ///< byte offset within the region
        size_t bytes = 0;         ///< span length in bytes
        uint32_t instr_idx = 0;   ///< instrumented app instruction
        size_t orig_slot_off = 0; ///< offset of the relocated original
        bool has_orig = false;    ///< false under nvbit_remove_orig
    };
    std::vector<TrampSpan> tramp_spans;
    uint32_t instr_num_regs = 0;   ///< launch regs when instrumented
    uint32_t instr_stack_bytes = 0;///< launch stack when instrumented

    // Code Loader/Unloader state.
    bool enable_desired = true;
    bool instrumented_resident = false;
    uint32_t orig_launch_regs = 0;
    uint32_t orig_launch_stack = 0;
};

/** The singleton core; the free functions in nvbit.hpp call into it. */
class NvbitCore
{
  public:
    static NvbitCore &instance();

    // --- Tool injection ----------------------------------------------
    void inject(NvbitTool *tool);
    void uninject();
    NvbitTool *tool() { return tool_; }

    // --- Inspection API ------------------------------------------------
    FuncState &stateOf(cudrv::CUcontext ctx, cudrv::CUfunction f);
    const std::vector<Instr *> &getInstrs(cudrv::CUcontext ctx,
                                          cudrv::CUfunction f);
    std::vector<std::vector<Instr *>>
    getBasicBlocks(cudrv::CUcontext ctx, cudrv::CUfunction f);
    std::vector<cudrv::CUfunction>
    getRelatedFunctions(cudrv::CUcontext ctx, cudrv::CUfunction f);

    // --- Instrumentation API ------------------------------------------
    void insertCall(const Instr *i, const char *fname, ipoint_t where);
    void addCallArg(const Instr *i, CallRequest::Arg arg);
    void removeOrig(const Instr *i);

    // --- Control API ----------------------------------------------------
    void enableInstrumented(cudrv::CUcontext ctx, cudrv::CUfunction f,
                            bool enable, bool apply_related);
    void resetInstrumented(cudrv::CUcontext ctx, cudrv::CUfunction f);

    // --- Tool globals ----------------------------------------------------
    cudrv::CUdeviceptr toolGlobal(const char *name);

    // --- Inline probes ---------------------------------------------------
    void declareInlineProbe(const std::string &name,
                            const nvbit_probe_desc &desc);

    const JitStats &jitStats() const { return jit_; }

    /**
     * Ablation knob: when set, trampolines save the full register
     * file (largest bucket) instead of the minimum computed from the
     * register requirements of the original and injected code.
     */
    void setForceFullSave(bool v) { force_full_save_ = v; }

  private:
    NvbitCore() = default;

    static void interposerThunk(void *user, cudrv::CUcontext ctx,
                                bool is_exit, CallbackId cbid,
                                const char *name, void *params,
                                CUresult *status);
    void onDriverCall(cudrv::CUcontext ctx, bool is_exit,
                      CallbackId cbid, const char *name, void *params,
                      CUresult *status);

    /** Tool Functions Loader: builtins + tool device functions. */
    void initForContext(cudrv::CUcontext ctx);

    /** Instruction Lifter. */
    void lift(FuncState &st);

    /** Code Generator: build trampolines + instrumented code copy. */
    void generate(FuncState &st);

    /** Code Loader/Unloader: make the desired version resident. */
    void applyResidency(FuncState &st);

    /** Recompute launch register/stack requirements for @p f. */
    void updateLaunchRequirements(cudrv::CUfunction f);

    /** Handle a kernel launch (entry side). */
    void onLaunchEntry(cudrv::cuLaunchKernel_params *p);

    /**
     * Fault attribution (exit side of a failed launch): classify the
     * pending exception as tool- vs app-origin, map trampoline pcs
     * back to instrumented app instructions, then fire the tool's
     * nvbit_at_exception callback.
     */
    void attributeException(cudrv::CUcontext ctx);

    /**
     * Classify @p pc as tool- vs app-origin using the trampoline span
     * maps and tool-module/builtin code ranges, mapping trampoline pcs
     * (and, via @p ret_stack, tool-function pcs) back to the original
     * app instruction.  Shared by fault attribution and the
     * obs::Profiler origin resolver.  When @p label is non-null and
     * the pc lives in code no module covers (a trampoline or builtin
     * routine), a symbolic name and its base are stored there.
     */
    void resolvePcOrigin(uint64_t pc,
                         const std::vector<uint64_t> &ret_stack,
                         bool &tool, uint64_t &app_pc,
                         std::string *label = nullptr,
                         uint64_t *label_base = nullptr) const;

    /** Drop all state for functions of a module being unloaded. */
    void onModuleUnload(cudrv::CUmodule mod);

    FuncState *owningState(const Instr *i);

    /** Emit argument-marshalling code for one call request. */
    void marshalArgs(const CallRequest &req, const Instr &instr,
                     unsigned save_k,
                     std::vector<isa::Instruction> &out);

    /** Pick the save/restore bucket for an instruction's requests. */
    unsigned pickSaveBucket(const FuncState &st,
                            const InstrRequests &reqs) const;

    NvbitTool *tool_ = nullptr;
    bool injected_ = false;
    bool force_full_save_ = false;

    std::unique_ptr<Hal> hal_;
    cudrv::CUcontext init_ctx_ = nullptr;
    cudrv::CUmodule tool_module_ = nullptr;

    /** Builtin routine name -> device address. */
    std::map<std::string, cudrv::CUdeviceptr> builtin_syms_;
    /** Device ranges of the builtin routines (for fault attribution). */
    std::vector<std::pair<cudrv::CUdeviceptr, size_t>> builtin_ranges_;
    std::map<unsigned, cudrv::CUdeviceptr> save_addr_;
    std::map<unsigned, cudrv::CUdeviceptr> restore_addr_;

    std::map<cudrv::CUfunction, std::unique_ptr<FuncState>> fstate_;
    std::map<const Instr *, FuncState *> instr_owner_;

    /** Owned copy of one nvbit_probe_desc (string lifetimes). */
    struct ProbeDecl {
        bool ballot_guard = false;
        std::string warp_counter;
        std::string thread_counter;
        std::string table_ptr;
        int index_arg = -1;
        int scale_arg = -1;
    };
    /** Declared inlinable tool functions (nvbit_declare_inline_probe). */
    std::map<std::string, ProbeDecl> probe_decls_;

    JitStats jit_;
};

} // namespace nvbit::core

#endif // NVBIT_CORE_CORE_HPP
