#include "core/core.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "core/builtins.hpp"
#include "isa/abi.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "ptx/compiler.hpp"

namespace nvbit::core {

using cudrv::CUcontext;
using cudrv::CUfunction;
using cudrv::CUfunc_st;
using isa::Instruction;
using isa::Opcode;

NvbitCore &
NvbitCore::instance()
{
    static NvbitCore core;
    return core;
}

// --- Injection ---------------------------------------------------------

void
NvbitCore::inject(NvbitTool *tool)
{
    NVBIT_ASSERT(!injected_, "an NVBit tool is already injected; only "
                             "one tool can be used per application run");
    tool_ = tool;
    injected_ = true;
    cudrv::setDriverInterposer(&NvbitCore::interposerThunk, this);
    // Let the PC-sampling profiler attribute sampled pcs to tool vs
    // app code through the same maps fault attribution uses.
    obs::Profiler::instance().setOriginResolver(
        [this](uint64_t pc, const std::vector<uint64_t> &ret_stack,
               obs::Profiler::OriginInfo &out) {
            resolvePcOrigin(pc, ret_stack, out.tool, out.app_pc,
                            &out.func, &out.func_base);
        });
}

void
NvbitCore::uninject()
{
    if (!injected_)
        return;
    // Publish this run's JIT decomposition (paper Figure 5) before
    // the stats are cleared; wall-clock, hence Volatile.
    {
        obs::MetricsRegistry &mr = obs::MetricsRegistry::instance();
        const obs::Stability v = obs::Stability::Volatile;
        mr.add("core.jit_retrieve_ns", jit_.retrieve_ns, v);
        mr.add("core.jit_disassemble_ns", jit_.disassemble_ns, v);
        mr.add("core.jit_lift_ns", jit_.lift_ns, v);
        mr.add("core.jit_codegen_ns", jit_.codegen_ns, v);
        mr.add("core.jit_swap_ns", jit_.swap_ns, v);
    }
    cudrv::setDriverInterposer(nullptr, nullptr);
    obs::Profiler::instance().setOriginResolver(nullptr);
    tool_ = nullptr;
    injected_ = false;
    hal_.reset();
    init_ctx_ = nullptr;
    tool_module_ = nullptr;
    builtin_syms_.clear();
    builtin_ranges_.clear();
    save_addr_.clear();
    restore_addr_.clear();
    fstate_.clear();
    instr_owner_.clear();
    probe_decls_.clear();
    jit_ = JitStats{};
}

void
NvbitCore::interposerThunk(void *user, CUcontext ctx, bool is_exit,
                           CallbackId cbid, const char *name,
                           void *params, CUresult *status)
{
    static_cast<NvbitCore *>(user)->onDriverCall(ctx, is_exit, cbid,
                                                 name, params, status);
}

void
NvbitCore::onDriverCall(CUcontext ctx, bool is_exit, CallbackId cbid,
                        const char *name, void *params, CUresult *status)
{
    // Forward to the tool first (paper: code generation happens "at
    // the exit of the CUDA driver callback, if instrumentation was
    // applied").  Component (4) is the user's own code: time spent
    // inside NVBit APIs the callback invokes (retrieve/disassemble/
    // lift/swap) is attributed to those components, not to the user.
    if (tool_) {
        auto nestedNs = [this] {
            return jit_.retrieve_ns + jit_.disassemble_ns +
                   jit_.lift_ns + jit_.codegen_ns + jit_.swap_ns;
        };
        uint64_t nested_before = nestedNs();
        uint64_t t0 = nowNs();
        tool_->nvbit_at_cuda_driver_call(ctx, is_exit, cbid, name,
                                         params, status);
        uint64_t elapsed = nowNs() - t0;
        uint64_t nested = nestedNs() - nested_before;
        uint64_t net = elapsed > nested ? elapsed - nested : 0;
        jit_.user_callback_ns += net;
        obs::MetricsRegistry::instance().add(
            "core.tool_callback_ns", net, obs::Stability::Volatile);
    }

    switch (cbid) {
      case CallbackId::cuCtxCreate:
        if (is_exit && *status == cudrv::CUDA_SUCCESS) {
            auto *p = static_cast<cudrv::cuCtxCreate_params *>(params);
            initForContext(*p->pctx);
            if (tool_)
                tool_->nvbit_at_ctx_init(*p->pctx);
        }
        break;
      case CallbackId::cuCtxDestroy:
        if (!is_exit) {
            auto *p = static_cast<cudrv::cuCtxDestroy_params *>(params);
            if (tool_)
                tool_->nvbit_at_ctx_term(p->ctx);
        }
        break;
      case CallbackId::cuModuleUnload:
        if (!is_exit) {
            auto *p =
                static_cast<cudrv::cuModuleUnload_params *>(params);
            onModuleUnload(p->module);
        }
        break;
      case CallbackId::cuLaunchKernel:
        if (!is_exit) {
            onLaunchEntry(
                static_cast<cudrv::cuLaunchKernel_params *>(params));
        } else if (*status != cudrv::CUDA_SUCCESS) {
            attributeException(ctx);
        }
        break;
      case CallbackId::cuDevicePrimaryCtxReset:
        if (is_exit && *status == cudrv::CUDA_SUCCESS) {
            // The reset restored every app module's pristine code, so
            // any resident instrumented version is gone; mark it
            // non-resident and applyResidency() re-swaps it in at the
            // next launch.  Trampoline regions are core allocations
            // and survive the reset untouched.
            for (auto &[f, st] : fstate_)
                st->instrumented_resident = false;
        }
        break;
      default:
        break;
    }
}

// --- Tool Functions Loader ----------------------------------------------

void
NvbitCore::initForContext(CUcontext ctx)
{
    if (init_ctx_)
        return; // HAL and tool functions are loaded once
    init_ctx_ = ctx;
    sim::GpuDevice &gpu = cudrv::device();
    hal_ = std::make_unique<Hal>(gpu.family());

    // Place the embedded save/restore routines, one per bucket size.
    auto placeRoutine = [&](const std::vector<Instruction> &code) {
        std::vector<uint8_t> bytes = hal_->assembleAll(code);
        mem::DevPtr addr =
            gpu.memory().alloc(bytes.size(), hal_->codeAlignment());
        gpu.memory().write(addr, bytes.data(), bytes.size());
        builtin_ranges_.emplace_back(addr, bytes.size());
        return addr;
    };
    for (unsigned k : kSaveBuckets) {
        save_addr_[k] = placeRoutine(buildSaveRoutine(k));
        restore_addr_[k] = placeRoutine(buildRestoreRoutine(k));
        builtin_syms_[strfmt("__nvbit_save_%u", k)] = save_addr_[k];
        builtin_syms_[strfmt("__nvbit_restore_%u", k)] =
            restore_addr_[k];
    }
    for (const auto &[name, code] : buildDeviceApiRoutines())
        builtin_syms_[name] = placeRoutine(code);

    // Load the tool's device functions, resolving calls to the
    // Device API builtins through the extra symbol table.
    if (tool_ && !tool_->deviceFunctionSource().empty()) {
        ptx::CompiledModule cm;
        try {
            ptx::CompileOptions opts;
            opts.const_bank = 2; // tool constant bank, see gpu.hpp
            cm = ptx::compile(tool_->deviceFunctionSource(),
                              gpu.family(), opts);
        } catch (const ptx::CompileError &e) {
            fatal("tool device-function PTX failed to compile at line "
                  "%d: %s", e.line, e.message.c_str());
        }
        std::vector<uint8_t> image = cudrv::serializeModule(cm);
        CUresult r = cudrv::loadModuleInternal(
            &tool_module_, ctx, image.data(), image.size(),
            /*fire_callbacks=*/false, /*is_tool_module=*/true,
            &builtin_syms_);
        if (r != cudrv::CUDA_SUCCESS) {
            fatal("failed to load tool device functions: %s",
                  cudrv::resultName(r));
        }
    }
}

cudrv::CUdeviceptr
NvbitCore::toolGlobal(const char *name)
{
    NVBIT_ASSERT(tool_module_ != nullptr,
                 "no tool device functions loaded");
    auto it = tool_module_->globals.find(name);
    NVBIT_ASSERT(it != tool_module_->globals.end(),
                 "unknown tool global '%s'", name);
    return it->second.first;
}

// --- Instruction Lifter --------------------------------------------------

FuncState &
NvbitCore::stateOf(CUcontext ctx, CUfunction f)
{
    auto it = fstate_.find(f);
    if (it != fstate_.end())
        return *it->second;
    auto st = std::make_unique<FuncState>();
    st->func = f;
    st->ctx = ctx ? ctx : cudrv::currentContext();
    st->orig_launch_regs = f->launch_num_regs;
    st->orig_launch_stack = f->launch_stack_bytes;
    FuncState &ref = *st;
    fstate_[f] = std::move(st);
    return ref;
}

void
NvbitCore::lift(FuncState &st)
{
    if (st.lifted)
        return;
    NVBIT_ASSERT(hal_ != nullptr, "NVBit core used before any context "
                                  "was created");
    CUfunc_st *f = st.func;
    sim::GpuDevice &gpu = cudrv::device();
    const size_t ib = hal_->instrBytes();

    // (1) Retrieve the original GPU code.
    {
        ScopedTimerNs t(jit_.retrieve_ns);
        st.original_code.resize(f->code_size);
        gpu.memory().read(f->code_addr, st.original_code.data(),
                          f->code_size);
    }

    // (2) Disassemble into the internal representation (this also
    // produces the SASS strings, the dominant cost per the paper).
    const size_t n = f->code_size / ib;
    {
        ScopedTimerNs t(jit_.disassemble_ns);
        st.instrs.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            Instruction dec;
            if (!hal_->disassemble(st.original_code.data() + i * ib,
                                   dec)) {
                panic("undecodable instruction in function '%s' at "
                      "offset 0x%zx", f->name.c_str(), i * ib);
            }
            st.instrs.push_back(std::make_unique<Instr>(
                dec, static_cast<uint32_t>(i), i * ib, ib));
        }
    }

    // (3) Convert to the user-facing format: pointer vector, source
    // line correlation, indirect-control-flow detection.
    {
        ScopedTimerNs t(jit_.lift_ns);
        st.instr_ptrs.reserve(n);
        for (auto &ip : st.instrs) {
            st.instr_ptrs.push_back(ip.get());
            instr_owner_[ip.get()] = &st;
            if (ip->decoded().isIndirectBranch())
                st.has_icf = true;
        }
        for (const ptx::LineInfo &li : f->line_info) {
            if (li.instr_index < n &&
                li.file_index < f->mod->files.size()) {
                st.instrs[li.instr_index]->setLineInfo(
                    &f->mod->files[li.file_index], li.line);
            }
        }
    }
    st.lifted = true;
}

const std::vector<Instr *> &
NvbitCore::getInstrs(CUcontext ctx, CUfunction f)
{
    FuncState &st = stateOf(ctx, f);
    lift(st);
    return st.instr_ptrs;
}

std::vector<std::vector<Instr *>>
NvbitCore::getBasicBlocks(CUcontext ctx, CUfunction f)
{
    FuncState &st = stateOf(ctx, f);
    lift(st);
    if (st.bb_built)
        return st.basic_blocks;

    ScopedTimerNs t(jit_.lift_ns);
    st.basic_blocks.clear();
    if (st.has_icf) {
        // Paper: with indirect control flow "the basic block [API]
        // will also return the simpler flat view".
        st.basic_blocks.push_back(st.instr_ptrs);
        st.bb_built = true;
        return st.basic_blocks;
    }

    const size_t n = st.instr_ptrs.size();
    const size_t ib = hal_->instrBytes();
    std::vector<uint8_t> leader(n + 1, 0);
    if (n > 0)
        leader[0] = 1;
    for (size_t i = 0; i < n; ++i) {
        const Instruction &in = st.instr_ptrs[i]->decoded();
        if (!in.isControlFlow())
            continue;
        if (i + 1 < n)
            leader[i + 1] = 1;
        if (in.op == Opcode::BRA) {
            int64_t target_off = static_cast<int64_t>((i + 1) * ib) +
                                 in.imm;
            if (target_off >= 0 &&
                target_off < static_cast<int64_t>(n * ib) &&
                target_off % ib == 0) {
                leader[target_off / ib] = 1;
            }
        }
    }
    std::vector<Instr *> block;
    for (size_t i = 0; i < n; ++i) {
        if (leader[i] && !block.empty()) {
            st.basic_blocks.push_back(std::move(block));
            block.clear();
        }
        block.push_back(st.instr_ptrs[i]);
    }
    if (!block.empty())
        st.basic_blocks.push_back(std::move(block));
    st.bb_built = true;
    return st.basic_blocks;
}

std::vector<CUfunction>
NvbitCore::getRelatedFunctions(CUcontext ctx, CUfunction f)
{
    (void)ctx;
    std::vector<CUfunction> out;
    std::set<CUfunction> seen{f};
    std::vector<CUfunction> work{f};
    while (!work.empty()) {
        CUfunction cur = work.back();
        work.pop_back();
        for (CUfunc_st *r : cur->related) {
            if (seen.insert(r).second) {
                out.push_back(r);
                work.push_back(r);
            }
        }
    }
    return out;
}

// --- Instrumentation API ---------------------------------------------------

FuncState *
NvbitCore::owningState(const Instr *i)
{
    auto it = instr_owner_.find(i);
    NVBIT_ASSERT(it != instr_owner_.end(),
                 "Instr does not belong to a lifted function");
    return it->second;
}

void
NvbitCore::insertCall(const Instr *i, const char *fname, ipoint_t where)
{
    FuncState *st = owningState(i);
    InstrRequests &reqs = st->requests[i->getIdx()];
    CallRequest req;
    req.func_name = fname;
    req.where = where;
    auto &vec = (where == IPOINT_BEFORE) ? reqs.before : reqs.after;
    vec.push_back(std::move(req));
    st->last_call = &vec.back();
    st->dirty = true;
}

void
NvbitCore::addCallArg(const Instr *i, CallRequest::Arg arg)
{
    FuncState *st = owningState(i);
    NVBIT_ASSERT(st->last_call != nullptr,
                 "nvbit_add_call_arg_* without nvbit_insert_call");
    st->last_call->args.push_back(arg);
    st->dirty = true;
}

void
NvbitCore::removeOrig(const Instr *i)
{
    FuncState *st = owningState(i);
    st->requests[i->getIdx()].remove_orig = true;
    st->dirty = true;
}

// --- Code Generator ---------------------------------------------------------

namespace {

/** One trampoline under construction. */
struct PendingTrampoline {
    uint32_t instr_idx;
    std::vector<Instruction> code;
    int reloc_bra_pos = -1;  ///< index of the relocated BRA, if any
    int64_t orig_bra_imm = 0;
    size_t offset = 0;       ///< byte offset within the bulk region
    size_t orig_slot = 0;    ///< instruction slot of the relocated orig
    bool has_orig = false;   ///< false under nvbit_remove_orig
    /** Set when the callsite matched a declared inline-probe shape;
     *  registered with the device once the region address is known. */
    bool inlinable = false;
    sim::InlineProbe probe{};
};

} // namespace

void
NvbitCore::declareInlineProbe(const std::string &name,
                              const nvbit_probe_desc &desc)
{
    ProbeDecl d;
    d.ballot_guard = desc.ballot_guard;
    if (desc.warp_counter)
        d.warp_counter = desc.warp_counter;
    if (desc.thread_counter)
        d.thread_counter = desc.thread_counter;
    if (desc.table_ptr)
        d.table_ptr = desc.table_ptr;
    d.index_arg = desc.index_arg;
    d.scale_arg = desc.scale_arg;
    probe_decls_[name] = std::move(d);
}

unsigned
NvbitCore::pickSaveBucket(const FuncState &st,
                          const InstrRequests &reqs) const
{
    CUfunc_st *f = st.func;
    if (force_full_save_) {
        // Ablation: no register-requirement analysis; preserve the
        // entire register file around every injection.
        return kSaveBuckets[std::size(kSaveBuckets) - 1];
    }
    // Clobber envelope of the injected machinery: marshalling uses the
    // scratch and argument registers (R0..R15); add the register
    // demand of every injected function.
    unsigned clobber = 16;
    unsigned min_floor = 0;
    auto account = [&](const CallRequest &req) {
        CUfunc_st *tf = tool_module_ ? tool_module_->find(req.func_name)
                                     : nullptr;
        if (tf) {
            clobber = std::max(clobber, tf->num_regs);
            if (tf->uses_device_api) {
                // Arbitrary registers may be read/written: save the
                // application's full register state.
                min_floor = std::max(min_floor, f->num_regs);
            }
        }
        for (const CallRequest::Arg &a : req.args) {
            if (a.kind == CallRequest::ArgKind::RegVal)
                min_floor = std::max(min_floor,
                                     static_cast<unsigned>(a.v0) + 1);
        }
    };
    for (const CallRequest &r : reqs.before)
        account(r);
    for (const CallRequest &r : reqs.after)
        account(r);

    // Paper: save the minimum — registers the application does not use
    // are dead and need not be preserved.
    unsigned needed = std::min(clobber, std::max(f->num_regs, 1u));
    needed = std::max(needed, min_floor);
    return saveBucketFor(needed);
}

void
NvbitCore::marshalArgs(const CallRequest &req, const Instr &instr,
                       unsigned save_k, std::vector<Instruction> &out)
{
    std::vector<bool> is64;
    for (const CallRequest::Arg &a : req.args)
        is64.push_back(a.kind == CallRequest::ArgKind::Imm64);
    auto slots = isa::abiAssignArgRegs(is64);
    NVBIT_ASSERT(slots.has_value(),
                 "too many arguments for injected function '%s'",
                 req.func_name.c_str());

    for (size_t i = 0; i < req.args.size(); ++i) {
        const CallRequest::Arg &a = req.args[i];
        uint8_t dst = (*slots)[i].reg;
        switch (a.kind) {
          case CallRequest::ArgKind::GuardPred: {
            const Instruction &dec = instr.decoded();
            if (dec.alwaysExecutes()) {
                out.push_back(isa::makeMovImm(dst, 1));
            } else if (dec.pred == isa::kPredT) {
                out.push_back(
                    isa::makeMovImm(dst, dec.pred_neg ? 0 : 1));
            } else {
                out.push_back(isa::makeLoad(Opcode::LDL,
                                            isa::kAbiScratch0,
                                            isa::kAbiSpReg, 0));
                Instruction shr;
                shr.op = Opcode::SHR;
                shr.mod = isa::kModImmSrc2;
                shr.rd = isa::kAbiScratch0;
                shr.ra = isa::kAbiScratch0;
                shr.imm = dec.pred;
                out.push_back(shr);
                Instruction andi;
                andi.op = Opcode::AND;
                andi.mod = isa::kModImmSrc2;
                andi.rd = dst;
                andi.ra = isa::kAbiScratch0;
                andi.imm = 1;
                out.push_back(andi);
                if (dec.pred_neg) {
                    Instruction x;
                    x.op = Opcode::XOR;
                    x.mod = isa::kModImmSrc2;
                    x.rd = dst;
                    x.ra = dst;
                    x.imm = 1;
                    out.push_back(x);
                }
            }
            break;
          }
          case CallRequest::ArgKind::RegVal: {
            unsigned r = static_cast<unsigned>(a.v0);
            NVBIT_ASSERT(r < save_k,
                         "REG_VAL argument R%u exceeds the save window "
                         "(%u registers)", r, save_k);
            out.push_back(isa::makeLoad(Opcode::LDL, dst,
                                        isa::kAbiSpReg,
                                        saveSlotOf(r)));
            break;
          }
          case CallRequest::ArgKind::Imm32:
            isa::emitMaterialize32(out, dst,
                                   static_cast<uint32_t>(a.v0));
            break;
          case CallRequest::ArgKind::Imm64:
            isa::emitMaterialize32(out, dst,
                                   static_cast<uint32_t>(a.v0));
            isa::emitMaterialize32(
                out, static_cast<uint8_t>(dst + 1),
                static_cast<uint32_t>(a.v0 >> 32));
            break;
          case CallRequest::ArgKind::CBank:
            out.push_back(isa::makeLdc(
                dst, static_cast<uint8_t>(a.v0),
                static_cast<uint32_t>(a.v1)));
            break;
          case CallRequest::ArgKind::ActiveMask: {
            Instruction vote;
            vote.op = Opcode::VOTE;
            vote.mod = isa::modSetVotePred(
                isa::modSetVoteMode(0, isa::VoteMode::BALLOT),
                isa::kPredT, false);
            vote.rd = dst;
            out.push_back(vote);
            break;
          }
        }
    }
}

void
NvbitCore::generate(FuncState &st)
{
    ScopedTimerNs timer(jit_.codegen_ns);
    CUfunc_st *f = st.func;
    std::string span_name;
    if (obs::Tracer::instance().enabled())
        span_name = strfmt("instrument %s", f->name.c_str());
    obs::TraceSpan span(obs::kHostPid, obs::kHostJitTid, span_name,
                        "core.jit");
    uint64_t save_restore_pairs = 0;
    uint64_t tool_call_sites = 0;
    sim::GpuDevice &gpu = cudrv::device();
    const size_t ib = hal_->instrBytes();

    NVBIT_ASSERT(st.lifted, "generate before lift");

    // Regeneration: if a previous instrumented version is resident it
    // is about to become stale (its trampolines are freed below), so
    // put the original code back first; applyResidency() then installs
    // the freshly generated version.
    if (st.instrumented_resident) {
        ScopedTimerNs t(jit_.swap_ns);
        gpu.memory().write(f->code_addr, st.original_code.data(),
                           st.original_code.size());
        jit_.swap_bytes += st.original_code.size();
        st.instrumented_resident = false;
    }
    // Drop the previous trampoline region (and its predecoded pages,
    // before the range can be reallocated for new code).
    if (st.tramp_base) {
        gpu.invalidateCodeRange(st.tramp_base, st.tramp_bytes);
        gpu.memory().free(st.tramp_base);
        st.tramp_base = 0;
        st.tramp_bytes = 0;
    }
    st.tramp_spans.clear();
    // Inline probes registered by a previous generation point at the
    // trampolines just freed; drop them before registering new ones.
    gpu.clearInlineProbes(f->code_addr, f->code_size);

    st.instrumented_code = st.original_code;
    unsigned max_k = 0;
    uint32_t tool_regs = 0;
    uint32_t tool_stack = 0;

    // Does this callsite's request list match a declared inline-probe
    // shape exactly?  Single IPOINT_BEFORE call, original kept, every
    // argument accounted for by the declaration, all named tool
    // globals resolvable.  Anything else falls back to the trampoline.
    auto resolveGlobal = [&](const std::string &nm, uint64_t &out) {
        if (nm.empty()) {
            out = 0;
            return true;
        }
        if (!tool_module_)
            return false;
        auto git = tool_module_->globals.find(nm);
        if (git == tool_module_->globals.end())
            return false;
        out = git->second.first;
        return true;
    };
    auto matchProbe = [&](const InstrRequests &reqs, const Instr &I,
                          sim::InlineProbe &p) {
        if (reqs.before.size() != 1 || !reqs.after.empty() ||
            reqs.remove_orig)
            return false;
        const CallRequest &req = reqs.before.front();
        auto dit = probe_decls_.find(req.func_name);
        if (dit == probe_decls_.end())
            return false;
        const ProbeDecl &d = dit->second;
        std::vector<bool> used(req.args.size(), false);
        if (d.ballot_guard) {
            if (req.args.empty() ||
                req.args[0].kind != CallRequest::ArgKind::GuardPred)
                return false;
            used[0] = true;
        }
        auto takeImm = [&](int pos, uint64_t &v) {
            if (pos < 0)
                return true; // declaration does not use this term
            if (pos >= static_cast<int>(req.args.size()) || used[pos] ||
                req.args[pos].kind != CallRequest::ArgKind::Imm32)
                return false;
            v = req.args[pos].v0;
            used[pos] = true;
            return true;
        };
        uint64_t index = 0;
        uint64_t scale = 1;
        if (!takeImm(d.index_arg, index) || !takeImm(d.scale_arg, scale))
            return false;
        for (bool u : used)
            if (!u)
                return false; // an argument the shape cannot explain
        if (!resolveGlobal(d.warp_counter, p.warp_counter) ||
            !resolveGlobal(d.thread_counter, p.thread_counter) ||
            !resolveGlobal(d.table_ptr, p.table_ptr))
            return false;
        p.ballot_guard = d.ballot_guard;
        p.index = static_cast<uint32_t>(index);
        p.scale = scale;
        p.orig = I.decoded(); // un-relocated: replayed at the callsite pc
        return true;
    };

    std::vector<PendingTrampoline> tramps;
    for (auto &[idx, reqs] : st.requests) {
        if (reqs.empty())
            continue;
        NVBIT_ASSERT(idx < st.instr_ptrs.size(),
                     "instruction index out of range");
        const Instr &I = *st.instr_ptrs[idx];
        const unsigned k = pickSaveBucket(st, reqs);
        max_k = std::max(max_k, k);

        PendingTrampoline tr;
        tr.instr_idx = idx;

        auto lookupTarget = [&](const std::string &name) -> uint64_t {
            if (tool_module_) {
                if (CUfunc_st *tf = tool_module_->find(name)) {
                    tool_regs = std::max(tool_regs, tf->num_regs);
                    tool_stack = std::max(tool_stack, tf->total_stack);
                    return tf->code_addr;
                }
            }
            auto bit = builtin_syms_.find(name);
            if (bit != builtin_syms_.end())
                return bit->second;
            fatal("nvbit_insert_call: unknown device function '%s'",
                  name.c_str());
        };

        auto emitCalls = [&](const std::vector<CallRequest> &calls) {
            tr.code.push_back(isa::makeCalAbs(save_addr_.at(k)));
            ++save_restore_pairs;
            tool_call_sites += calls.size();
            for (const CallRequest &req : calls) {
                marshalArgs(req, I, k, tr.code);
                tr.code.push_back(
                    isa::makeCalAbs(lookupTarget(req.func_name)));
            }
            tr.code.push_back(isa::makeCalAbs(restore_addr_.at(k)));
        };

        if (!reqs.before.empty())
            emitCalls(reqs.before);

        // Relocated original instruction (paper Figure 4 step 5), or a
        // NOP under nvbit_remove_orig.
        const Instruction &orig = I.decoded();
        tr.orig_slot = tr.code.size();
        tr.has_orig = !reqs.remove_orig;
        if (reqs.remove_orig) {
            tr.code.push_back(isa::makeNop());
        } else {
            if (orig.isRelativeBranch()) {
                tr.reloc_bra_pos = static_cast<int>(tr.code.size());
                tr.orig_bra_imm = orig.imm;
            }
            tr.code.push_back(orig);
        }

        if (!reqs.after.empty())
            emitCalls(reqs.after);

        // Return to the next PC of the instrumented code.
        tr.code.push_back(
            isa::makeJmpAbs(f->code_addr + (idx + 1) * ib));
        if (!probe_decls_.empty() && matchProbe(reqs, I, tr.probe))
            tr.inlinable = true;
        tramps.push_back(std::move(tr));
    }

    if (!tramps.empty()) {
        // Bulk-allocate the trampoline region (paper: "the allocation
        // of space for these trampolines is handled in bulk").
        size_t total = 0;
        for (PendingTrampoline &tr : tramps) {
            tr.offset = total;
            total += tr.code.size() * ib;
        }
        st.tramp_spans.reserve(tramps.size());
        for (const PendingTrampoline &tr : tramps) {
            st.tramp_spans.push_back(
                FuncState::TrampSpan{tr.offset, tr.code.size() * ib,
                                     tr.instr_idx, tr.orig_slot * ib,
                                     tr.has_orig});
        }
        st.tramp_base = gpu.memory().alloc(
            total, std::max(hal_->codeAlignment(), size_t{16}));
        st.tramp_bytes = total;

        std::vector<uint8_t> bulk(total);
        for (PendingTrampoline &tr : tramps) {
            uint64_t base = st.tramp_base + tr.offset;
            // Fix up the relocated relative branch now that the final
            // position is known (paper Figure 4: "if this relocated
            // instruction is a relative control flow instruction, the
            // offset must be adjusted").
            if (tr.reloc_bra_pos >= 0) {
                uint64_t orig_next =
                    f->code_addr + (tr.instr_idx + 1) * ib;
                uint64_t new_next =
                    base + (tr.reloc_bra_pos + 1) * ib;
                int64_t new_imm =
                    static_cast<int64_t>(orig_next + tr.orig_bra_imm) -
                    static_cast<int64_t>(new_next);
                Instruction &bra = tr.code[tr.reloc_bra_pos];
                bra.imm = new_imm;
                if (!isa::encodable(hal_->family(), bra)) {
                    fatal("relocated branch offset overflows the %s "
                          "encoding; trampoline too far from code",
                          isa::archFamilyName(hal_->family()));
                }
            }
            std::vector<uint8_t> bytes = hal_->assembleAll(tr.code);
            std::copy(bytes.begin(), bytes.end(),
                      bulk.begin() + tr.offset);
            // Patch the instrumented copy: the original instruction
            // becomes an unconditional jump to the trampoline.
            Instruction jmp = isa::makeJmpAbs(base);
            hal_->assemble(jmp, st.instrumented_code.data() +
                                    tr.instr_idx * ib);
            if (tr.inlinable) {
                tr.probe.jmp_pc = f->code_addr + tr.instr_idx * ib;
                tr.probe.tramp_target = base;
                gpu.registerInlineProbe(tr.probe);
            }
            ++jit_.trampolines_generated;
        }
        gpu.memory().write(st.tramp_base, bulk.data(), bulk.size());
        // The write above invalidated any stale predecoded pages;
        // decode the fresh trampolines eagerly.
        gpu.predecodeRange(st.tramp_base, st.tramp_bytes);
    }

    // Launch requirements of the instrumented version (paper: the Code
    // Loader/Unloader "computes the stack and register requirements
    // for the kernel launch, based on which version ... is executing").
    st.instr_num_regs = std::max({f->num_regs, max_k, tool_regs});
    st.instr_stack_bytes =
        saveFrameBytes(max_k == 0 ? 8 : max_k) + tool_stack + 64;
    st.generated = true;
    st.dirty = false;
    ++jit_.functions_instrumented;

    obs::MetricsRegistry &mr = obs::MetricsRegistry::instance();
    mr.add("core.functions_instrumented", 1);
    mr.add("core.trampolines_generated", tramps.size());
    mr.add("core.save_restore_pairs", save_restore_pairs);
    mr.add("core.tool_call_sites", tool_call_sites);
    span.arg("trampolines", tramps.size());
}

// --- Code Loader/Unloader --------------------------------------------------

void
NvbitCore::applyResidency(FuncState &st)
{
    CUfunc_st *f = st.func;
    bool want = st.generated && st.enable_desired &&
                !st.requests.empty();
    if (want == st.instrumented_resident)
        return;
    const std::vector<uint8_t> &code =
        want ? st.instrumented_code : st.original_code;
    NVBIT_ASSERT(code.size() == f->code_size,
                 "code version size mismatch");
    {
        // Paper: "the cost of this operation is identical to that of a
        // cudaMemcpy from host to device with the number of bytes
        // equal to the size of the original code".
        ScopedTimerNs t(jit_.swap_ns);
        std::string span_name;
        if (obs::Tracer::instance().enabled())
            span_name = strfmt("code-swap %s [%s]", f->name.c_str(),
                               want ? "instrumented" : "original");
        obs::TraceSpan span(obs::kHostPid, obs::kHostJitTid, span_name,
                            "core.jit");
        span.arg("bytes", static_cast<uint64_t>(code.size()));
        cudrv::device().memory().write(f->code_addr, code.data(),
                                       code.size());
        jit_.swap_bytes += code.size();
        obs::MetricsRegistry &mr = obs::MetricsRegistry::instance();
        mr.add("core.code_swaps", 1);
        mr.add("core.swap_bytes", code.size());
    }
    // Cache-invalidation protocol: swapping code versions must drop
    // the stale predecoded image (the write observer already did) and
    // predecode the incoming version before the next fetch.
    cudrv::device().invalidateCodeRange(f->code_addr, f->code_size);
    cudrv::device().predecodeRange(f->code_addr, f->code_size);
    st.instrumented_resident = want;
}

void
NvbitCore::updateLaunchRequirements(CUfunction f)
{
    // Collect the launched function and everything it may call.
    std::vector<CUfunction> funcs = getRelatedFunctions(nullptr, f);
    funcs.push_back(f);

    uint32_t regs = 0;
    uint32_t extra_stack = 0;
    for (CUfunction g : funcs) {
        regs = std::max(regs, g->num_regs);
        auto it = fstate_.find(g);
        if (it != fstate_.end() && it->second->instrumented_resident) {
            regs = std::max(regs, it->second->instr_num_regs);
            extra_stack = std::max(extra_stack,
                                   it->second->instr_stack_bytes);
        }
    }
    f->launch_num_regs = std::max(f->num_regs, regs);
    f->launch_stack_bytes = f->total_stack + extra_stack;
}

void
NvbitCore::onLaunchEntry(cudrv::cuLaunchKernel_params *p)
{
    CUfunction f = p->f;
    if (!f)
        return;
    std::vector<CUfunction> funcs = getRelatedFunctions(nullptr, f);
    funcs.push_back(f);
    for (CUfunction g : funcs) {
        auto it = fstate_.find(g);
        if (it == fstate_.end())
            continue;
        FuncState &st = *it->second;
        if (!st.requests.empty() && (!st.generated || st.dirty))
            generate(st);
        applyResidency(st);
    }
    updateLaunchRequirements(f);
}

// --- Fault attribution -------------------------------------------------------

namespace {

/** Span containing trampoline-region offset @p off, or nullptr. */
const FuncState::TrampSpan *
findSpan(const FuncState &st, uint64_t off)
{
    for (const FuncState::TrampSpan &sp : st.tramp_spans) {
        if (off >= sp.offset && off < sp.offset + sp.bytes)
            return &sp;
    }
    return nullptr;
}

} // namespace

void
NvbitCore::resolvePcOrigin(uint64_t pc,
                           const std::vector<uint64_t> &ret_stack,
                           bool &tool, uint64_t &app_pc,
                           std::string *label,
                           uint64_t *label_base) const
{
    const size_t ib = hal_ ? hal_->instrBytes() : 8;

    // Where does a pc live?  (a) inside a trampoline region: the span
    // maps it back to the instrumented app instruction, and the
    // relocated-original slot is the only app-origin instruction in
    // the span.  (b) inside a tool device function or a builtin
    // save/restore/Device-API routine: tool origin.  (c) anywhere
    // else: application code.
    auto inToolCode = [&](uint64_t p) {
        if (tool_module_) {
            for (const auto &fn : tool_module_->funcs) {
                if (p >= fn->code_addr &&
                    p < fn->code_addr + fn->code_size)
                    return true;
            }
        }
        for (const auto &[addr, bytes] : builtin_ranges_) {
            if (p >= addr && p < addr + bytes)
                return true;
        }
        return false;
    };
    auto inTrampoline = [&](uint64_t p)
        -> std::pair<const FuncState *, const FuncState::TrampSpan *> {
        for (const auto &[f, st] : fstate_) {
            if (st->tramp_base && p >= st->tramp_base &&
                p < st->tramp_base + st->tramp_bytes) {
                return {st.get(), findSpan(*st, p - st->tramp_base)};
            }
        }
        return {nullptr, nullptr};
    };

    tool = false;
    app_pc = pc;
    if (auto [st, sp] = inTrampoline(pc); st) {
        app_pc = sp ? st->func->code_addr + sp->instr_idx * ib : pc;
        bool at_orig = sp && sp->has_orig &&
                       (pc - st->tramp_base) - sp->offset ==
                           sp->orig_slot_off;
        // Landing on the relocated original instruction is the app's
        // own code; anywhere else in the span is injected machinery.
        tool = !at_orig;
        if (label) {
            *label = st->func->name + "$tramp";
            if (label_base)
                *label_base = st->tramp_base;
        }
    } else if (inToolCode(pc)) {
        tool = true;
        // Walk the return stack (innermost last) for the trampoline
        // call site, recovering the app instruction being
        // instrumented when inside a tool device function.
        for (auto it = ret_stack.rbegin(); it != ret_stack.rend();
             ++it) {
            if (auto [st, sp] = inTrampoline(*it); st && sp) {
                app_pc = st->func->code_addr + sp->instr_idx * ib;
                break;
            }
        }
        // Builtin routines (register save/restore, Device API) live
        // outside every module; name them from the symbol table.
        if (label) {
            for (const auto &[addr, bytes] : builtin_ranges_) {
                if (pc < addr || pc >= addr + bytes)
                    continue;
                for (const auto &[nm, a] : builtin_syms_) {
                    if (a == addr) {
                        *label = nm;
                        if (label_base)
                            *label_base = addr;
                        break;
                    }
                }
                break;
            }
        }
    }
}

void
NvbitCore::attributeException(CUcontext ctx)
{
    cudrv::CUexceptionInfo *info = cudrv::mutableExceptionInfo(ctx);
    if (!info || !info->valid ||
        info->origin != cudrv::CU_EXCEPTION_ORIGIN_UNKNOWN)
        return;
    const sim::DeviceException &e = info->exc;

    bool tool = false;
    uint64_t app_pc = e.pc;
    resolvePcOrigin(e.pc, e.ret_stack, tool, app_pc);
    info->origin = tool ? cudrv::CU_EXCEPTION_ORIGIN_TOOL
                        : cudrv::CU_EXCEPTION_ORIGIN_APP;
    info->app_pc = app_pc;

    if (tool_)
        tool_->nvbit_at_exception(ctx, *info);
}

void
NvbitCore::enableInstrumented(CUcontext ctx, CUfunction f, bool enable,
                              bool apply_related)
{
    std::vector<CUfunction> funcs;
    funcs.push_back(f);
    if (apply_related) {
        for (CUfunction g : getRelatedFunctions(ctx, f))
            funcs.push_back(g);
    }
    for (CUfunction g : funcs) {
        FuncState &st = stateOf(ctx, g);
        st.enable_desired = enable;
        if (st.generated)
            applyResidency(st);
    }
}

void
NvbitCore::resetInstrumented(CUcontext ctx, CUfunction f)
{
    FuncState &st = stateOf(ctx, f);
    if (st.instrumented_resident) {
        ScopedTimerNs t(jit_.swap_ns);
        cudrv::device().memory().write(f->code_addr,
                                       st.original_code.data(),
                                       st.original_code.size());
        jit_.swap_bytes += st.original_code.size();
        st.instrumented_resident = false;
    }
    if (st.tramp_base) {
        cudrv::device().invalidateCodeRange(st.tramp_base,
                                            st.tramp_bytes);
        cudrv::device().memory().free(st.tramp_base);
        st.tramp_base = 0;
        st.tramp_bytes = 0;
    }
    cudrv::device().clearInlineProbes(f->code_addr, f->code_size);
    st.tramp_spans.clear();
    st.requests.clear();
    st.last_call = nullptr;
    st.generated = false;
    st.dirty = false;
    st.instrumented_code.clear();
    f->launch_num_regs = st.orig_launch_regs;
    f->launch_stack_bytes = st.orig_launch_stack;
}

void
NvbitCore::onModuleUnload(cudrv::CUmodule mod)
{
    for (auto it = fstate_.begin(); it != fstate_.end();) {
        if (it->first->mod == mod) {
            FuncState &st = *it->second;
            cudrv::device().clearInlineProbes(it->first->code_addr,
                                              it->first->code_size);
            if (st.tramp_base)
                cudrv::device().memory().free(st.tramp_base);
            for (Instr *i : st.instr_ptrs)
                instr_owner_.erase(i);
            it = fstate_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace nvbit::core
