#include "core/builtins.hpp"

#include "common/logging.hpp"
#include "isa/abi.hpp"

namespace nvbit::core {

using isa::Instruction;
using isa::Opcode;

unsigned
saveBucketFor(unsigned needed_regs)
{
    for (unsigned k : kSaveBuckets)
        if (k >= needed_regs)
            return k;
    return 256;
}

std::vector<Instruction>
buildSaveRoutine(unsigned k)
{
    std::vector<Instruction> code;
    const int32_t frame = static_cast<int32_t>(saveFrameBytes(k));
    code.push_back(
        isa::makeIAddImm(isa::kAbiSpReg, isa::kAbiSpReg, -frame));
    // Store R0..R(k-1).  R1's slot receives the already-decremented
    // stack pointer; the restore routine recomputes it instead of
    // reloading the slot.
    for (unsigned r = 0; r < k; ++r) {
        code.push_back(isa::makeStore(Opcode::STL, isa::kAbiSpReg,
                                      saveSlotOf(r),
                                      static_cast<uint8_t>(r)));
    }
    // Predicates: R0 is already saved and free as scratch.
    code.push_back(isa::makeP2R(isa::kAbiScratch0));
    code.push_back(isa::makeStore(Opcode::STL, isa::kAbiSpReg, 0,
                                  isa::kAbiScratch0));
    // Publish the save-area base for the Device API.
    code.push_back(isa::makeMovReg(isa::kAbiNvbitCtxReg, isa::kAbiSpReg));
    code.push_back(isa::makeRet());
    return code;
}

std::vector<Instruction>
buildRestoreRoutine(unsigned k)
{
    std::vector<Instruction> code;
    const int32_t frame = static_cast<int32_t>(saveFrameBytes(k));
    // Predicates first (R0 used as scratch, reloaded afterwards).
    code.push_back(isa::makeLoad(Opcode::LDL, isa::kAbiScratch0,
                                 isa::kAbiSpReg, 0));
    code.push_back(isa::makeR2P(isa::kAbiScratch0));
    for (unsigned r = 0; r < k; ++r) {
        if (r == isa::kAbiSpReg)
            continue; // the SP is recomputed below
        code.push_back(isa::makeLoad(Opcode::LDL,
                                     static_cast<uint8_t>(r),
                                     isa::kAbiSpReg, saveSlotOf(r)));
    }
    code.push_back(
        isa::makeIAddImm(isa::kAbiSpReg, isa::kAbiSpReg, frame));
    code.push_back(isa::makeRet());
    return code;
}

std::map<std::string, std::vector<Instruction>>
buildDeviceApiRoutines()
{
    using isa::kAbiScratch0;
    using isa::kAbiScratch1;
    using isa::kAbiNvbitCtxReg;
    std::map<std::string, std::vector<Instruction>> out;

    // R4 = nvbit_read_reg(R4 = reg number)
    {
        std::vector<Instruction> c;
        Instruction shl;
        shl.op = Opcode::SHL;
        shl.mod = isa::kModImmSrc2;
        shl.rd = kAbiScratch0;
        shl.ra = isa::kAbiArgReg;
        shl.imm = 2;
        c.push_back(shl);
        c.push_back(isa::makeIAddReg(kAbiScratch0, kAbiScratch0,
                                     kAbiNvbitCtxReg));
        c.push_back(isa::makeLoad(Opcode::LDL, isa::kAbiRetReg,
                                  kAbiScratch0, 4));
        c.push_back(isa::makeRet());
        out["nvbit_read_reg"] = std::move(c);
    }

    // nvbit_write_reg(R4 = reg number, R5 = value)
    {
        std::vector<Instruction> c;
        Instruction shl;
        shl.op = Opcode::SHL;
        shl.mod = isa::kModImmSrc2;
        shl.rd = kAbiScratch0;
        shl.ra = isa::kAbiArgReg;
        shl.imm = 2;
        c.push_back(shl);
        c.push_back(isa::makeIAddReg(kAbiScratch0, kAbiScratch0,
                                     kAbiNvbitCtxReg));
        c.push_back(isa::makeStore(Opcode::STL, kAbiScratch0, 4,
                                   isa::kAbiArgReg + 1));
        c.push_back(isa::makeRet());
        out["nvbit_write_reg"] = std::move(c);
    }

    // R4 = nvbit_read_pred(R4 = predicate number)
    {
        std::vector<Instruction> c;
        c.push_back(isa::makeLoad(Opcode::LDL, kAbiScratch0,
                                  kAbiNvbitCtxReg, 0));
        Instruction shr;
        shr.op = Opcode::SHR;
        shr.rd = kAbiScratch0;
        shr.ra = kAbiScratch0;
        shr.rb = isa::kAbiArgReg;
        c.push_back(shr);
        Instruction andi;
        andi.op = Opcode::AND;
        andi.mod = isa::kModImmSrc2;
        andi.rd = isa::kAbiRetReg;
        andi.ra = kAbiScratch0;
        andi.imm = 1;
        c.push_back(andi);
        c.push_back(isa::makeRet());
        out["nvbit_read_pred"] = std::move(c);
    }

    // nvbit_write_pred(R4 = predicate number, R5 = value 0/1)
    {
        std::vector<Instruction> c;
        c.push_back(isa::makeLoad(Opcode::LDL, kAbiScratch0,
                                  kAbiNvbitCtxReg, 0));
        c.push_back(isa::makeMovImm(kAbiScratch1, 1));
        Instruction shl1;
        shl1.op = Opcode::SHL;
        shl1.rd = kAbiScratch1;
        shl1.ra = kAbiScratch1;
        shl1.rb = isa::kAbiArgReg;
        c.push_back(shl1);
        Instruction notb;
        notb.op = Opcode::NOT;
        notb.rd = kAbiScratch1;
        notb.ra = kAbiScratch1;
        c.push_back(notb);
        Instruction andr;
        andr.op = Opcode::AND;
        andr.rd = kAbiScratch0;
        andr.ra = kAbiScratch0;
        andr.rb = kAbiScratch1;
        c.push_back(andr);
        Instruction shlv;
        shlv.op = Opcode::SHL;
        shlv.rd = isa::kAbiArgReg + 1;
        shlv.ra = isa::kAbiArgReg + 1;
        shlv.rb = isa::kAbiArgReg;
        c.push_back(shlv);
        Instruction orr;
        orr.op = Opcode::OR;
        orr.rd = kAbiScratch0;
        orr.ra = kAbiScratch0;
        orr.rb = isa::kAbiArgReg + 1;
        c.push_back(orr);
        c.push_back(isa::makeStore(Opcode::STL, kAbiNvbitCtxReg, 0,
                                   kAbiScratch0));
        c.push_back(isa::makeRet());
        out["nvbit_write_pred"] = std::move(c);
    }

    return out;
}

} // namespace nvbit::core
