#!/usr/bin/env bash
# CI entry point: docs hygiene, tier-1 build + full test suite, a fast
# bench smoke (validating the BENCH_*.json artifact path), then the
# same test suite under ASan+UBSan via the `sanitize` CMake preset.
#
# Usage: scripts/ci.sh [--no-sanitize]
#
# The fault/exception suite alone can be run with
#   ctest --test-dir build -L faults
set -euo pipefail

cd "$(dirname "$0")/.."

run_sanitize=1
[[ "${1:-}" == "--no-sanitize" ]] && run_sanitize=0

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "==> docs: check_docs.sh"
scripts/check_docs.sh

echo "==> tier-1: configure + build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$jobs"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "==> bench smoke: micro_core (one filter) + figure --smoke runs"
./build/bench/micro_core --benchmark_filter=BM_EncodeDecode \
    --benchmark_min_time=0.01
./build/bench/fig5_jit_overhead --smoke
./build/bench/fig6_mem_divergence --smoke
./build/bench/fig7_instr_histogram --smoke
./build/bench/fig8_sampling_slowdown --smoke
./build/bench/fig9_sampling_error --smoke
./build/bench/fig_pcsamp_overhead --smoke
./build/bench/fig_counter_overhead --smoke
./build/bench/tab_wfft_emulation --smoke
for artifact in BENCH_micro_core.json BENCH_fig5_jit_overhead.json \
    BENCH_fig6_mem_divergence.json BENCH_fig7_instr_histogram.json \
    BENCH_fig8_sampling_slowdown.json BENCH_fig9_sampling_error.json \
    BENCH_fig_pcsamp_overhead.json BENCH_fig_counter_overhead.json \
    BENCH_tab_wfft_emulation.json; do
    if [[ ! -s "$artifact" ]]; then
        echo "ci: missing bench artifact $artifact" >&2
        exit 1
    fi
done

echo "==> bench guard: scheduler hot path vs committed baseline"
scripts/bench_guard.sh

if [[ "$run_sanitize" == 1 ]]; then
    echo "==> sanitize (ASan+UBSan): configure + build"
    cmake --preset sanitize
    cmake --build --preset sanitize -j "$jobs"

    echo "==> sanitize: ctest"
    ctest --preset sanitize

    echo "==> sanitize: ctest (traced execution engine)"
    NVBIT_SIM_TRACES=1 ctest --preset sanitize
fi

echo "==> CI OK"
