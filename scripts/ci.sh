#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then the same suite
# under ASan+UBSan via the `sanitize` CMake preset.
#
# Usage: scripts/ci.sh [--no-sanitize]
#
# The fault/exception suite alone can be run with
#   ctest --test-dir build -L faults
set -euo pipefail

cd "$(dirname "$0")/.."

run_sanitize=1
[[ "${1:-}" == "--no-sanitize" ]] && run_sanitize=0

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "==> tier-1: configure + build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$jobs"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_sanitize" == 1 ]]; then
    echo "==> sanitize (ASan+UBSan): configure + build"
    cmake --preset sanitize
    cmake --build --preset sanitize -j "$jobs"

    echo "==> sanitize: ctest"
    ctest --preset sanitize
fi

echo "==> CI OK"
