#!/usr/bin/env bash
# Documentation hygiene checks, run by scripts/ci.sh:
#
#   1. every docs/*.md is reachable (linked) from README.md,
#   2. no relative markdown link in README.md or docs/*.md points at a
#      missing file,
#   3. every fenced code block in those files carries a language tag.
#
# Exits non-zero with one line per violation.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
err() {
    echo "check_docs: $*" >&2
    fail=1
}

files=(README.md docs/*.md)

# --- 1. every doc is linked from the README --------------------------------
for doc in docs/*.md; do
    if ! grep -q "(${doc})" README.md; then
        err "README.md does not link ${doc}"
    fi
done

# --- 2. relative links resolve ---------------------------------------------
# Extract (target) parts of [text](target) links, drop external URLs and
# pure in-page anchors, strip trailing anchors, resolve against the
# linking file's directory.
for f in "${files[@]}"; do
    dir=$(dirname "$f")
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        path="${target%%#*}"
        [[ -z "$path" ]] && continue
        if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
            err "$f: dead link -> $target"
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$f" |
        sed 's/.*(\(.*\))/\1/')
done

# --- 3. fenced code blocks are language-tagged ------------------------------
for f in "${files[@]}"; do
    untagged=$(awk '
        /^[[:space:]]*```/ {
            if (!in_fence) {
                in_fence = 1
                tag = $0
                sub(/^[[:space:]]*```[[:space:]]*/, "", tag)
                if (tag == "") print NR
            } else {
                in_fence = 0
            }
        }
    ' "$f")
    for line in $untagged; do
        err "$f:$line: fenced code block without language tag"
    done
done

if [[ "$fail" -ne 0 ]]; then
    echo "check_docs: FAILED" >&2
    exit 1
fi
echo "check_docs: OK (${#files[@]} files)"
