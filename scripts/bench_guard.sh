#!/usr/bin/env bash
# Guard the simulator's scheduler hot path against perf regressions:
# run the micro_core engine comparison and diff its per-(engine,
# kernel) warp-MIPS throughput against the committed baseline in
# bench/baselines/BENCH_micro_core.baseline.json.  Fails when any row
# shared with the baseline regresses by more than 25% — wide enough to
# absorb loaded-CI noise (micro_core already takes the min over
# repetitions), tight enough to catch an accidental O(n) insertion in
# the warp-scheduler loop (the PC-sampling work's documented budget is
# one relaxed load when disabled).
#
# Usage: scripts/bench_guard.sh [--update]
#   --update   refresh the committed baseline from a fresh run instead
#              of diffing (use on a quiet machine, then commit).
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=bench/baselines/BENCH_micro_core.baseline.json
fresh=BENCH_micro_core.json
threshold=0.75 # fresh/baseline warp-MIPS ratio below this fails

if [[ ! -x build/bench/micro_core ]]; then
    echo "bench_guard: build/bench/micro_core missing (build first)" >&2
    exit 1
fi

echo "==> bench_guard: running micro_core engine comparison"
./build/bench/micro_core --benchmark_filter=BM_CacheModel \
    --benchmark_min_time=0.01 >/dev/null

if [[ "${1:-}" == "--update" ]]; then
    mkdir -p "$(dirname "$baseline")"
    cp "$fresh" "$baseline"
    echo "bench_guard: baseline updated from $fresh"
    exit 0
fi

if [[ ! -s "$baseline" ]]; then
    echo "bench_guard: no baseline at $baseline (run --update)" >&2
    exit 1
fi

python3 - "$baseline" "$fresh" "$threshold" <<'EOF'
import json
import sys

baseline_path, fresh_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)

def rows(doc):
    return {(r["engine"], r["kernel"]): r for r in doc["engine_comparison"]}

base_rows, fresh_rows = rows(base), rows(fresh)
failed = False
for key in sorted(base_rows.keys() & fresh_rows.keys()):
    b = base_rows[key]["warp_mips"]
    f = fresh_rows[key]["warp_mips"]
    ratio = f / b if b else 1.0
    status = "OK" if ratio >= threshold else "REGRESSION"
    print(f"  {key[1]:<12} {key[0]:<26} {b:8.2f} -> {f:8.2f} MIPS "
          f"({ratio:5.2f}x) {status}")
    if ratio < threshold:
        failed = True
if failed:
    print(f"bench_guard: scheduler hot path regressed more than "
          f"{(1 - threshold) * 100:.0f}% vs {baseline_path}", file=sys.stderr)
    sys.exit(1)
print("bench_guard: hot path within budget")
EOF
