#!/usr/bin/env bash
# Guard the simulator's scheduler hot path against perf regressions:
# run the micro_core engine comparison and diff its per-(engine,
# kernel) warp-MIPS throughput against the committed baseline in
# bench/baselines/BENCH_micro_core.baseline.json.  Fails when any row
# shared with the baseline regresses by more than 25% — wide enough to
# absorb loaded-CI noise (micro_core already takes the min over
# repetitions), tight enough to catch an accidental O(n) insertion in
# the warp-scheduler loop (the PC-sampling work's documented budget is
# one relaxed load when disabled).
#
# The guard is two-sided: a row more than 25% FASTER than the baseline
# also fails.  An unexpected speedup usually means the engine stopped
# doing work it should do (a skipped charge, a dropped differential
# check) or the baseline is stale; either way a human should look and,
# if the speedup is real, refresh the baseline deliberately.
#
# Usage: scripts/bench_guard.sh [--update]
#   --update   refresh the committed baseline from a fresh run instead
#              of diffing (use on a quiet machine, then commit).
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=bench/baselines/BENCH_micro_core.baseline.json
fresh=BENCH_micro_core.json
threshold=0.75 # fresh/baseline warp-MIPS ratio below this fails
upper=1.25     # ...and above this fails too (unexpected improvement)

if [[ ! -x build/bench/micro_core ]]; then
    echo "bench_guard: build/bench/micro_core missing (build first)" >&2
    exit 1
fi

echo "==> bench_guard: running micro_core engine comparison"
./build/bench/micro_core --benchmark_filter=BM_CacheModel \
    --benchmark_min_time=0.01 >/dev/null

if [[ "${1:-}" == "--update" ]]; then
    mkdir -p "$(dirname "$baseline")"
    cp "$fresh" "$baseline"
    echo "bench_guard: baseline updated from $fresh"
    exit 0
fi

if [[ ! -s "$baseline" ]]; then
    echo "bench_guard: no baseline at $baseline (run --update)" >&2
    exit 1
fi

python3 - "$baseline" "$fresh" "$threshold" "$upper" <<'EOF'
import json
import sys

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
threshold, upper = float(sys.argv[3]), float(sys.argv[4])
with open(baseline_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)

def rows(doc):
    return {(r["engine"], r["kernel"]): r for r in doc["engine_comparison"]}

base_rows, fresh_rows = rows(base), rows(fresh)
failed = False
for key in sorted(base_rows.keys() & fresh_rows.keys()):
    b = base_rows[key]["warp_mips"]
    f = fresh_rows[key]["warp_mips"]
    ratio = f / b if b else 1.0
    if ratio < threshold:
        status = "REGRESSION"
    elif ratio > upper:
        status = "UNEXPECTED IMPROVEMENT"
    else:
        status = "OK"
    print(f"  {key[1]:<12} {key[0]:<26} {b:8.2f} -> {f:8.2f} MIPS "
          f"({ratio:5.2f}x) {status}")
    if status != "OK":
        failed = True
if failed:
    print(f"bench_guard: hot-path throughput moved more than "
          f"{(1 - threshold) * 100:.0f}% from {baseline_path}; if the "
          f"change is intentional, rerun with --update and commit the "
          f"new baseline", file=sys.stderr)
    sys.exit(1)
print("bench_guard: hot path within budget")
EOF
