file(REMOVE_RECURSE
  "CMakeFiles/fig8_sampling_slowdown.dir/fig8_sampling_slowdown.cpp.o"
  "CMakeFiles/fig8_sampling_slowdown.dir/fig8_sampling_slowdown.cpp.o.d"
  "fig8_sampling_slowdown"
  "fig8_sampling_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sampling_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
