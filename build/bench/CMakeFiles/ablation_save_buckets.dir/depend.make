# Empty dependencies file for ablation_save_buckets.
# This may be replaced when dependencies are built.
