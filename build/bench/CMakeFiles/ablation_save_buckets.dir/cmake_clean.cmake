file(REMOVE_RECURSE
  "CMakeFiles/ablation_save_buckets.dir/ablation_save_buckets.cpp.o"
  "CMakeFiles/ablation_save_buckets.dir/ablation_save_buckets.cpp.o.d"
  "ablation_save_buckets"
  "ablation_save_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_save_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
