file(REMOVE_RECURSE
  "CMakeFiles/tab_wfft_emulation.dir/tab_wfft_emulation.cpp.o"
  "CMakeFiles/tab_wfft_emulation.dir/tab_wfft_emulation.cpp.o.d"
  "tab_wfft_emulation"
  "tab_wfft_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_wfft_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
