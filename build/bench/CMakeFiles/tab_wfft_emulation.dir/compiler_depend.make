# Empty compiler generated dependencies file for tab_wfft_emulation.
# This may be replaced when dependencies are built.
