file(REMOVE_RECURSE
  "CMakeFiles/fig6_mem_divergence.dir/fig6_mem_divergence.cpp.o"
  "CMakeFiles/fig6_mem_divergence.dir/fig6_mem_divergence.cpp.o.d"
  "fig6_mem_divergence"
  "fig6_mem_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mem_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
