# Empty dependencies file for fig7_instr_histogram.
# This may be replaced when dependencies are built.
