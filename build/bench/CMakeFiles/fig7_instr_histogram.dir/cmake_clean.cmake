file(REMOVE_RECURSE
  "CMakeFiles/fig7_instr_histogram.dir/fig7_instr_histogram.cpp.o"
  "CMakeFiles/fig7_instr_histogram.dir/fig7_instr_histogram.cpp.o.d"
  "fig7_instr_histogram"
  "fig7_instr_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_instr_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
