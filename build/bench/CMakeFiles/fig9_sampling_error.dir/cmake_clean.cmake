file(REMOVE_RECURSE
  "CMakeFiles/fig9_sampling_error.dir/fig9_sampling_error.cpp.o"
  "CMakeFiles/fig9_sampling_error.dir/fig9_sampling_error.cpp.o.d"
  "fig9_sampling_error"
  "fig9_sampling_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sampling_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
