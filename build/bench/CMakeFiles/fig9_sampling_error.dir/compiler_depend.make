# Empty compiler generated dependencies file for fig9_sampling_error.
# This may be replaced when dependencies are built.
