# Empty compiler generated dependencies file for fig5_jit_overhead.
# This may be replaced when dependencies are built.
