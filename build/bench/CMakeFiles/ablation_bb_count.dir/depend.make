# Empty dependencies file for ablation_bb_count.
# This may be replaced when dependencies are built.
