file(REMOVE_RECURSE
  "CMakeFiles/ablation_bb_count.dir/ablation_bb_count.cpp.o"
  "CMakeFiles/ablation_bb_count.dir/ablation_bb_count.cpp.o.d"
  "ablation_bb_count"
  "ablation_bb_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bb_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
