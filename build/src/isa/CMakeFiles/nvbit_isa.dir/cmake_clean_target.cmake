file(REMOVE_RECURSE
  "libnvbit_isa.a"
)
