# Empty dependencies file for nvbit_isa.
# This may be replaced when dependencies are built.
