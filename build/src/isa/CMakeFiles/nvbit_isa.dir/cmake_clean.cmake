file(REMOVE_RECURSE
  "CMakeFiles/nvbit_isa.dir/abi.cpp.o"
  "CMakeFiles/nvbit_isa.dir/abi.cpp.o.d"
  "CMakeFiles/nvbit_isa.dir/assembler.cpp.o"
  "CMakeFiles/nvbit_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/nvbit_isa.dir/encoding.cpp.o"
  "CMakeFiles/nvbit_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/nvbit_isa.dir/instruction.cpp.o"
  "CMakeFiles/nvbit_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/nvbit_isa.dir/opcodes.cpp.o"
  "CMakeFiles/nvbit_isa.dir/opcodes.cpp.o.d"
  "libnvbit_isa.a"
  "libnvbit_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
