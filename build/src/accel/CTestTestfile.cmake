# CMake generated Testfile for 
# Source directory: /root/repo/src/accel
# Build directory: /root/repo/build/src/accel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ptxc_nvdisasm_pipeline "/usr/bin/cmake" "-DPTXC=/root/repo/build/src/accel/ptxc" "-DNVDISASM=/root/repo/build/src/accel/nvdisasm" "-DPTX=/root/repo/src/accel/kernels/simblas.ptx" "-DOUT=/root/repo/build/src/accel/test_simblas.bin" "-P" "/root/repo/src/accel/test_pipeline.cmake")
set_tests_properties(ptxc_nvdisasm_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/accel/CMakeLists.txt;37;add_test;/root/repo/src/accel/CMakeLists.txt;0;")
