# Empty compiler generated dependencies file for nvdisasm.
# This may be replaced when dependencies are built.
