file(REMOVE_RECURSE
  "CMakeFiles/nvdisasm.dir/nvdisasm.cpp.o"
  "CMakeFiles/nvdisasm.dir/nvdisasm.cpp.o.d"
  "nvdisasm"
  "nvdisasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdisasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
