file(REMOVE_RECURSE
  "CMakeFiles/nvbit_accel.dir/simblas.cpp.o"
  "CMakeFiles/nvbit_accel.dir/simblas.cpp.o.d"
  "CMakeFiles/nvbit_accel.dir/simblas_image_sm5x.cpp.o"
  "CMakeFiles/nvbit_accel.dir/simblas_image_sm5x.cpp.o.d"
  "CMakeFiles/nvbit_accel.dir/simblas_image_sm7x.cpp.o"
  "CMakeFiles/nvbit_accel.dir/simblas_image_sm7x.cpp.o.d"
  "CMakeFiles/nvbit_accel.dir/simdnn.cpp.o"
  "CMakeFiles/nvbit_accel.dir/simdnn.cpp.o.d"
  "CMakeFiles/nvbit_accel.dir/simdnn_image_sm5x.cpp.o"
  "CMakeFiles/nvbit_accel.dir/simdnn_image_sm5x.cpp.o.d"
  "CMakeFiles/nvbit_accel.dir/simdnn_image_sm7x.cpp.o"
  "CMakeFiles/nvbit_accel.dir/simdnn_image_sm7x.cpp.o.d"
  "libnvbit_accel.a"
  "libnvbit_accel.pdb"
  "simblas_image_sm5x.cpp"
  "simblas_image_sm7x.cpp"
  "simdnn_image_sm5x.cpp"
  "simdnn_image_sm7x.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
