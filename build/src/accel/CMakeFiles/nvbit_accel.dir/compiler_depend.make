# Empty compiler generated dependencies file for nvbit_accel.
# This may be replaced when dependencies are built.
