file(REMOVE_RECURSE
  "libnvbit_accel.a"
)
