# Empty compiler generated dependencies file for ptxc.
# This may be replaced when dependencies are built.
