file(REMOVE_RECURSE
  "CMakeFiles/ptxc.dir/ptxc.cpp.o"
  "CMakeFiles/ptxc.dir/ptxc.cpp.o.d"
  "ptxc"
  "ptxc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptxc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
