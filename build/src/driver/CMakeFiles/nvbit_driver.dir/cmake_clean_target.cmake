file(REMOVE_RECURSE
  "libnvbit_driver.a"
)
