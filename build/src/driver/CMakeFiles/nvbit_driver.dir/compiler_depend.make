# Empty compiler generated dependencies file for nvbit_driver.
# This may be replaced when dependencies are built.
