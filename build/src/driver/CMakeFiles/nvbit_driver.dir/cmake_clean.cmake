file(REMOVE_RECURSE
  "CMakeFiles/nvbit_driver.dir/driver.cpp.o"
  "CMakeFiles/nvbit_driver.dir/driver.cpp.o.d"
  "CMakeFiles/nvbit_driver.dir/module_image.cpp.o"
  "CMakeFiles/nvbit_driver.dir/module_image.cpp.o.d"
  "libnvbit_driver.a"
  "libnvbit_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
