# Empty dependencies file for nvbit_ptx.
# This may be replaced when dependencies are built.
