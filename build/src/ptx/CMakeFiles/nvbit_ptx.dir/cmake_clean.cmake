file(REMOVE_RECURSE
  "CMakeFiles/nvbit_ptx.dir/codegen.cpp.o"
  "CMakeFiles/nvbit_ptx.dir/codegen.cpp.o.d"
  "CMakeFiles/nvbit_ptx.dir/compiler.cpp.o"
  "CMakeFiles/nvbit_ptx.dir/compiler.cpp.o.d"
  "CMakeFiles/nvbit_ptx.dir/lexer.cpp.o"
  "CMakeFiles/nvbit_ptx.dir/lexer.cpp.o.d"
  "CMakeFiles/nvbit_ptx.dir/parser.cpp.o"
  "CMakeFiles/nvbit_ptx.dir/parser.cpp.o.d"
  "CMakeFiles/nvbit_ptx.dir/regalloc.cpp.o"
  "CMakeFiles/nvbit_ptx.dir/regalloc.cpp.o.d"
  "libnvbit_ptx.a"
  "libnvbit_ptx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
