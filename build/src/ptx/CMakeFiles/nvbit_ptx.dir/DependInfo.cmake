
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptx/codegen.cpp" "src/ptx/CMakeFiles/nvbit_ptx.dir/codegen.cpp.o" "gcc" "src/ptx/CMakeFiles/nvbit_ptx.dir/codegen.cpp.o.d"
  "/root/repo/src/ptx/compiler.cpp" "src/ptx/CMakeFiles/nvbit_ptx.dir/compiler.cpp.o" "gcc" "src/ptx/CMakeFiles/nvbit_ptx.dir/compiler.cpp.o.d"
  "/root/repo/src/ptx/lexer.cpp" "src/ptx/CMakeFiles/nvbit_ptx.dir/lexer.cpp.o" "gcc" "src/ptx/CMakeFiles/nvbit_ptx.dir/lexer.cpp.o.d"
  "/root/repo/src/ptx/parser.cpp" "src/ptx/CMakeFiles/nvbit_ptx.dir/parser.cpp.o" "gcc" "src/ptx/CMakeFiles/nvbit_ptx.dir/parser.cpp.o.d"
  "/root/repo/src/ptx/regalloc.cpp" "src/ptx/CMakeFiles/nvbit_ptx.dir/regalloc.cpp.o" "gcc" "src/ptx/CMakeFiles/nvbit_ptx.dir/regalloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvbit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nvbit_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
