file(REMOVE_RECURSE
  "libnvbit_ptx.a"
)
