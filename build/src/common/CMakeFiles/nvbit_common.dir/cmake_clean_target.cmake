file(REMOVE_RECURSE
  "libnvbit_common.a"
)
