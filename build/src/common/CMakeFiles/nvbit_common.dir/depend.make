# Empty dependencies file for nvbit_common.
# This may be replaced when dependencies are built.
