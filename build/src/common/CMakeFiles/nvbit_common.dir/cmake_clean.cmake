file(REMOVE_RECURSE
  "CMakeFiles/nvbit_common.dir/logging.cpp.o"
  "CMakeFiles/nvbit_common.dir/logging.cpp.o.d"
  "libnvbit_common.a"
  "libnvbit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
