file(REMOVE_RECURSE
  "libnvbit_core.a"
)
