file(REMOVE_RECURSE
  "CMakeFiles/nvbit_core.dir/builtins.cpp.o"
  "CMakeFiles/nvbit_core.dir/builtins.cpp.o.d"
  "CMakeFiles/nvbit_core.dir/core.cpp.o"
  "CMakeFiles/nvbit_core.dir/core.cpp.o.d"
  "CMakeFiles/nvbit_core.dir/hal.cpp.o"
  "CMakeFiles/nvbit_core.dir/hal.cpp.o.d"
  "CMakeFiles/nvbit_core.dir/instr.cpp.o"
  "CMakeFiles/nvbit_core.dir/instr.cpp.o.d"
  "CMakeFiles/nvbit_core.dir/nvbit_api.cpp.o"
  "CMakeFiles/nvbit_core.dir/nvbit_api.cpp.o.d"
  "libnvbit_core.a"
  "libnvbit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
