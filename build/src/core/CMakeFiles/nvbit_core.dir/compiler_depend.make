# Empty compiler generated dependencies file for nvbit_core.
# This may be replaced when dependencies are built.
