
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/branch_divergence.cpp" "src/tools/CMakeFiles/nvbit_tools.dir/branch_divergence.cpp.o" "gcc" "src/tools/CMakeFiles/nvbit_tools.dir/branch_divergence.cpp.o.d"
  "/root/repo/src/tools/fault_injection.cpp" "src/tools/CMakeFiles/nvbit_tools.dir/fault_injection.cpp.o" "gcc" "src/tools/CMakeFiles/nvbit_tools.dir/fault_injection.cpp.o.d"
  "/root/repo/src/tools/instr_count.cpp" "src/tools/CMakeFiles/nvbit_tools.dir/instr_count.cpp.o" "gcc" "src/tools/CMakeFiles/nvbit_tools.dir/instr_count.cpp.o.d"
  "/root/repo/src/tools/mem_divergence.cpp" "src/tools/CMakeFiles/nvbit_tools.dir/mem_divergence.cpp.o" "gcc" "src/tools/CMakeFiles/nvbit_tools.dir/mem_divergence.cpp.o.d"
  "/root/repo/src/tools/mem_trace.cpp" "src/tools/CMakeFiles/nvbit_tools.dir/mem_trace.cpp.o" "gcc" "src/tools/CMakeFiles/nvbit_tools.dir/mem_trace.cpp.o.d"
  "/root/repo/src/tools/opcode_histogram.cpp" "src/tools/CMakeFiles/nvbit_tools.dir/opcode_histogram.cpp.o" "gcc" "src/tools/CMakeFiles/nvbit_tools.dir/opcode_histogram.cpp.o.d"
  "/root/repo/src/tools/wfft_emulator.cpp" "src/tools/CMakeFiles/nvbit_tools.dir/wfft_emulator.cpp.o" "gcc" "src/tools/CMakeFiles/nvbit_tools.dir/wfft_emulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nvbit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/nvbit_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvbit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvbit_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/nvbit_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nvbit_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvbit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
