# Empty dependencies file for nvbit_tools.
# This may be replaced when dependencies are built.
