file(REMOVE_RECURSE
  "libnvbit_tools.a"
)
