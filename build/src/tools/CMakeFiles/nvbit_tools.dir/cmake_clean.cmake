file(REMOVE_RECURSE
  "CMakeFiles/nvbit_tools.dir/branch_divergence.cpp.o"
  "CMakeFiles/nvbit_tools.dir/branch_divergence.cpp.o.d"
  "CMakeFiles/nvbit_tools.dir/fault_injection.cpp.o"
  "CMakeFiles/nvbit_tools.dir/fault_injection.cpp.o.d"
  "CMakeFiles/nvbit_tools.dir/instr_count.cpp.o"
  "CMakeFiles/nvbit_tools.dir/instr_count.cpp.o.d"
  "CMakeFiles/nvbit_tools.dir/mem_divergence.cpp.o"
  "CMakeFiles/nvbit_tools.dir/mem_divergence.cpp.o.d"
  "CMakeFiles/nvbit_tools.dir/mem_trace.cpp.o"
  "CMakeFiles/nvbit_tools.dir/mem_trace.cpp.o.d"
  "CMakeFiles/nvbit_tools.dir/opcode_histogram.cpp.o"
  "CMakeFiles/nvbit_tools.dir/opcode_histogram.cpp.o.d"
  "CMakeFiles/nvbit_tools.dir/wfft_emulator.cpp.o"
  "CMakeFiles/nvbit_tools.dir/wfft_emulator.cpp.o.d"
  "libnvbit_tools.a"
  "libnvbit_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
