file(REMOVE_RECURSE
  "CMakeFiles/nvbit_workloads.dir/kernel_factory.cpp.o"
  "CMakeFiles/nvbit_workloads.dir/kernel_factory.cpp.o.d"
  "CMakeFiles/nvbit_workloads.dir/ml_suite.cpp.o"
  "CMakeFiles/nvbit_workloads.dir/ml_suite.cpp.o.d"
  "CMakeFiles/nvbit_workloads.dir/spec_suite.cpp.o"
  "CMakeFiles/nvbit_workloads.dir/spec_suite.cpp.o.d"
  "libnvbit_workloads.a"
  "libnvbit_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
