file(REMOVE_RECURSE
  "libnvbit_workloads.a"
)
