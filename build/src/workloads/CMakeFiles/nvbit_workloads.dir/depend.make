# Empty dependencies file for nvbit_workloads.
# This may be replaced when dependencies are built.
