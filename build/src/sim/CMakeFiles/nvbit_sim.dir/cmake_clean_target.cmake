file(REMOVE_RECURSE
  "libnvbit_sim.a"
)
