# Empty compiler generated dependencies file for nvbit_sim.
# This may be replaced when dependencies are built.
