file(REMOVE_RECURSE
  "CMakeFiles/nvbit_sim.dir/cache.cpp.o"
  "CMakeFiles/nvbit_sim.dir/cache.cpp.o.d"
  "CMakeFiles/nvbit_sim.dir/gpu.cpp.o"
  "CMakeFiles/nvbit_sim.dir/gpu.cpp.o.d"
  "libnvbit_sim.a"
  "libnvbit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
