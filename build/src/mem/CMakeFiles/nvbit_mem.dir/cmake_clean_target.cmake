file(REMOVE_RECURSE
  "libnvbit_mem.a"
)
