# Empty dependencies file for nvbit_mem.
# This may be replaced when dependencies are built.
