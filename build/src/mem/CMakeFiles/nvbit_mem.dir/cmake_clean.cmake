file(REMOVE_RECURSE
  "CMakeFiles/nvbit_mem.dir/device_memory.cpp.o"
  "CMakeFiles/nvbit_mem.dir/device_memory.cpp.o.d"
  "libnvbit_mem.a"
  "libnvbit_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
