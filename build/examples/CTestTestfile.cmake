# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isa_extension_fft "/root/repo/build/examples/isa_extension_fft")
set_tests_properties(example_isa_extension_fft PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_sim "/root/repo/build/examples/cache_sim" "miniGhost")
set_tests_properties(example_cache_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sampling_histogram "/root/repo/build/examples/sampling_histogram" "ostencil")
set_tests_properties(example_sampling_histogram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nvbit_run "/root/repo/build/examples/nvbit_run" "--tool" "icount" "--size" "test" "ostencil")
set_tests_properties(example_nvbit_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nvbit_run_bb "/root/repo/build/examples/nvbit_run" "--tool" "icount-bb" "--size" "test" "cg")
set_tests_properties(example_nvbit_run_bb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
