file(REMOVE_RECURSE
  "CMakeFiles/isa_extension_fft.dir/isa_extension_fft.cpp.o"
  "CMakeFiles/isa_extension_fft.dir/isa_extension_fft.cpp.o.d"
  "isa_extension_fft"
  "isa_extension_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_extension_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
