# Empty compiler generated dependencies file for isa_extension_fft.
# This may be replaced when dependencies are built.
