# Empty dependencies file for nvbit_run.
# This may be replaced when dependencies are built.
