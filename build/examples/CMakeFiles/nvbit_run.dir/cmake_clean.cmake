file(REMOVE_RECURSE
  "CMakeFiles/nvbit_run.dir/nvbit_run.cpp.o"
  "CMakeFiles/nvbit_run.dir/nvbit_run.cpp.o.d"
  "nvbit_run"
  "nvbit_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvbit_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
