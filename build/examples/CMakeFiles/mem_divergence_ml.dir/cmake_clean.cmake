file(REMOVE_RECURSE
  "CMakeFiles/mem_divergence_ml.dir/mem_divergence_ml.cpp.o"
  "CMakeFiles/mem_divergence_ml.dir/mem_divergence_ml.cpp.o.d"
  "mem_divergence_ml"
  "mem_divergence_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_divergence_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
