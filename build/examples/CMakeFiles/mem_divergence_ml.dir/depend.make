# Empty dependencies file for mem_divergence_ml.
# This may be replaced when dependencies are built.
