
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sampling_histogram.cpp" "examples/CMakeFiles/sampling_histogram.dir/sampling_histogram.cpp.o" "gcc" "examples/CMakeFiles/sampling_histogram.dir/sampling_histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nvbit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/nvbit_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nvbit_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/nvbit_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/nvbit_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvbit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvbit_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/nvbit_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nvbit_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvbit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
