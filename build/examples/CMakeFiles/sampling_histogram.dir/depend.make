# Empty dependencies file for sampling_histogram.
# This may be replaced when dependencies are built.
