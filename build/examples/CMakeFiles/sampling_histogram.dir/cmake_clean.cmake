file(REMOVE_RECURSE
  "CMakeFiles/sampling_histogram.dir/sampling_histogram.cpp.o"
  "CMakeFiles/sampling_histogram.dir/sampling_histogram.cpp.o.d"
  "sampling_histogram"
  "sampling_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
