file(REMOVE_RECURSE
  "CMakeFiles/test_core3.dir/test_core3.cpp.o"
  "CMakeFiles/test_core3.dir/test_core3.cpp.o.d"
  "test_core3"
  "test_core3.pdb"
  "test_core3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
