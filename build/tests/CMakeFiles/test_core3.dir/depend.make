# Empty dependencies file for test_core3.
# This may be replaced when dependencies are built.
