# Empty dependencies file for test_tools2.
# This may be replaced when dependencies are built.
