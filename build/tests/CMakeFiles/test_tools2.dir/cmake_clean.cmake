file(REMOVE_RECURSE
  "CMakeFiles/test_tools2.dir/test_tools2.cpp.o"
  "CMakeFiles/test_tools2.dir/test_tools2.cpp.o.d"
  "test_tools2"
  "test_tools2.pdb"
  "test_tools2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tools2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
