file(REMOVE_RECURSE
  "CMakeFiles/test_core2.dir/test_core2.cpp.o"
  "CMakeFiles/test_core2.dir/test_core2.cpp.o.d"
  "test_core2"
  "test_core2.pdb"
  "test_core2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
