file(REMOVE_RECURSE
  "CMakeFiles/test_ptx.dir/test_ptx.cpp.o"
  "CMakeFiles/test_ptx.dir/test_ptx.cpp.o.d"
  "test_ptx"
  "test_ptx.pdb"
  "test_ptx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
