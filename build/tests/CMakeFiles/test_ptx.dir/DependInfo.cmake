
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ptx.cpp" "tests/CMakeFiles/test_ptx.dir/test_ptx.cpp.o" "gcc" "tests/CMakeFiles/test_ptx.dir/test_ptx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptx/CMakeFiles/nvbit_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/nvbit_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvbit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
