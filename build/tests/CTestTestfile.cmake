# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_ptx[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_core2[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_tools2[1]_include.cmake")
include("/root/repo/build/tests/test_core3[1]_include.cmake")
