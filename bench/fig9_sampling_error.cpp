/**
 * @file
 * Figure 9: error of the kernel-sampling approach vs exact (full
 * instrumentation) histograms, reported as the mean absolute
 * per-opcode share difference in percent.
 *
 * Expected shape (paper): average error below 0.6%; exactly 0% for
 * benchmarks whose control flow depends only on grid dimensions;
 * small nonzero error where control flow is data-dependent (here: md
 * with its evolving cutoff test, cg with value-driven updates).
 *
 * `--smoke` switches to the test problem size; CI uses it as a fast
 * end-to-end check (the error figures are not meaningful at that
 * size).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "tools/opcode_histogram.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;
using tools::OpcodeHistogramTool;
using tools::OpcodeCounts;

namespace {

OpcodeCounts
runCounts(const std::string &name, OpcodeHistogramTool::Mode mode,
          workloads::ProblemSize size)
{
    OpcodeHistogramTool tool(mode);
    OpcodeCounts counts{};
    runApp(tool, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(size);
        counts = tool.counts();
    });
    return counts;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    workloads::ProblemSize size = smoke ? workloads::ProblemSize::Test
                                        : workloads::ProblemSize::Large;
    std::printf("Figure 9: kernel-sampling error vs exact histogram "
                "(mean abs per-opcode share difference)\n");
    std::printf("%-10s %12s\n", "workload", "error");

    double sum = 0.0;
    size_t n = 0;
    std::vector<bench::JsonRow> rows;
    for (const std::string &name : workloads::specSuiteNames()) {
        OpcodeCounts exact =
            runCounts(name, OpcodeHistogramTool::Mode::Full, size);
        OpcodeCounts approx = runCounts(
            name, OpcodeHistogramTool::Mode::SampleGridDim, size);
        double err =
            OpcodeHistogramTool::shareErrorPct(exact, approx);
        std::printf("%-10s %11.4f%%\n", name.c_str(), err);
        rows.push_back({{"workload", bench::jStr(name)},
                        {"error_pct", bench::jNum(err)}});
        sum += err;
        ++n;
    }
    std::printf("%-10s %11.4f%%\n", "mean",
                sum / static_cast<double>(n));
    std::printf("\npaper: average error < 0.6%%; 0%% whenever control "
                "flow is a function of the grid dimensions only\n");
    bench::writeBenchJson(
        "fig9_sampling_error", "workloads", rows,
        {{"mean_error_pct",
          bench::jNum(sum / static_cast<double>(n))},
         {"problem_size", bench::jStr(smoke ? "test" : "large")}});
    return 0;
}
