/**
 * @file
 * Figure 5: JIT-compilation overhead breakdown.
 *
 * For each SpecAccel-like benchmark (medium size), every instruction
 * of every kernel is instrumented once with the instruction-count tool
 * (the paper's setup).  The NVBit core's six JIT components —
 * (1) retrieve code, (2) disassemble, (3) convert to API form,
 * (4) user callback, (5) code generation, (6) code swap — are
 * reported as a percentage of the application's native execution time.
 *
 * Expected shape (paper): average overhead below ~5%, worst case for
 * ilbdc (many unique short kernels), disassembly dominating.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/timer.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "tools/instr_count.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

void
runWorkload(const std::string &name, workloads::ProblemSize size)
{
    checkCu(cuInit(0), "cuInit");
    CUcontext ctx;
    checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
    auto wl = workloads::makeSpecWorkload(name);
    wl->run(size);
}

} // namespace

int
main(int argc, char **argv)
{
    // `--smoke` switches to the test problem size; CI uses it as a
    // fast artifact-path check, not a measurement.
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    workloads::ProblemSize size = smoke ? workloads::ProblemSize::Test
                                        : workloads::ProblemSize::Medium;
    std::printf("Figure 5: JIT-compilation overhead breakdown "
                "(%% of native execution time)\n");
    std::printf("%-10s %9s %9s %9s %9s %9s %9s %9s\n", "workload",
                "retrieve", "disasm", "lift", "callback", "codegen",
                "swap", "total");

    double sum_total = 0.0, max_total = 0.0;
    std::string max_name;
    std::array<double, 6> comp_sum{};
    std::vector<bench::JsonRow> rows;

    for (const std::string &name : workloads::specSuiteNames()) {
        // Native wall-clock time of the application.
        uint64_t t0 = nowNs();
        {
            NvbitTool passive;
            runApp(passive, [&] { runWorkload(name, size); });
        }
        double native_ns = static_cast<double>(nowNs() - t0);

        // Instrumented run; the core decomposes the JIT cost.
        JitStats js;
        {
            tools::InstrCountTool tool;
            runApp(tool, [&] {
                runWorkload(name, size);
                js = nvbit_get_jit_stats();
            });
        }

        auto pct = [&](uint64_t ns) {
            return 100.0 * static_cast<double>(ns) / native_ns;
        };
        double total = pct(js.totalNs());
        std::printf("%-10s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% "
                    "%8.2f%% %8.2f%%\n",
                    name.c_str(), pct(js.retrieve_ns),
                    pct(js.disassemble_ns), pct(js.lift_ns),
                    pct(js.user_callback_ns), pct(js.codegen_ns),
                    pct(js.swap_ns), total);
        rows.push_back({{"workload", bench::jStr(name)},
                        {"retrieve_pct", bench::jNum(pct(js.retrieve_ns))},
                        {"disasm_pct", bench::jNum(pct(js.disassemble_ns))},
                        {"lift_pct", bench::jNum(pct(js.lift_ns))},
                        {"callback_pct",
                         bench::jNum(pct(js.user_callback_ns))},
                        {"codegen_pct", bench::jNum(pct(js.codegen_ns))},
                        {"swap_pct", bench::jNum(pct(js.swap_ns))},
                        {"total_pct", bench::jNum(total)}});
        comp_sum[0] += pct(js.retrieve_ns);
        comp_sum[1] += pct(js.disassemble_ns);
        comp_sum[2] += pct(js.lift_ns);
        comp_sum[3] += pct(js.user_callback_ns);
        comp_sum[4] += pct(js.codegen_ns);
        comp_sum[5] += pct(js.swap_ns);
        sum_total += total;
        if (total > max_total) {
            max_total = total;
            max_name = name;
        }
    }

    double n = static_cast<double>(workloads::specSuiteNames().size());
    std::printf("%-10s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% "
                "%8.2f%%\n",
                "mean", comp_sum[0] / n, comp_sum[1] / n,
                comp_sum[2] / n, comp_sum[3] / n, comp_sum[4] / n,
                comp_sum[5] / n, sum_total / n);
    std::printf("\nworst case: %s at %.2f%% "
                "(paper: mean < 5%%, worst ~20%% for ilbdc; "
                "disassembly dominates)\n",
                max_name.c_str(), max_total);
    bench::writeBenchJson(
        "fig5_jit_overhead", "workloads", rows,
        {{"mean_total_pct", bench::jNum(sum_total / n)},
         {"worst_workload", bench::jStr(max_name)},
         {"worst_total_pct", bench::jNum(max_total)},
         {"problem_size", bench::jStr(smoke ? "test" : "medium")}});
    return 0;
}
