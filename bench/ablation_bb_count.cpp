/**
 * @file
 * Ablation: per-instruction vs per-basic-block instrumentation.
 *
 * The paper notes that Listing 1's per-instruction counter can be
 * optimised by "instrumenting basic blocks ... to improve the overhead
 * of the instrumented binary".  This benchmark quantifies the win and
 * cross-checks that the warp-level counts agree between both modes.
 */
#include <cstdio>
#include <string>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "tools/instr_count.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;
using tools::InstrCountTool;

namespace {

struct RunResult {
    uint64_t cycles = 0;
    uint64_t warp_count = 0;
};

RunResult
run(const std::string &name, InstrCountTool::Mode mode)
{
    InstrCountTool tool(mode);
    RunResult r;
    runApp(tool, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(workloads::ProblemSize::Medium);
        r.cycles = deviceTotalStats().cycles;
        r.warp_count = tool.warpInstrs();
    });
    return r;
}

uint64_t
runNative(const std::string &name)
{
    NvbitTool passive;
    uint64_t cycles = 0;
    runApp(passive, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(workloads::ProblemSize::Medium);
        cycles = deviceTotalStats().cycles;
    });
    return cycles;
}

} // namespace

int
main()
{
    std::printf("Ablation: per-instruction vs per-basic-block "
                "instruction counting (medium size)\n");
    std::printf("%-10s %12s %12s %9s %8s\n", "workload", "per-instr",
                "per-block", "speedup", "counts");

    for (const std::string &name :
         {std::string("ostencil"), std::string("palm"),
          std::string("ep"), std::string("cg"),
          std::string("miniGhost")}) {
        uint64_t native = runNative(name);
        RunResult pi = run(name, InstrCountTool::Mode::PerInstruction);
        RunResult bb = run(name, InstrCountTool::Mode::PerBasicBlock);
        double s_pi = static_cast<double>(pi.cycles) /
                      static_cast<double>(native);
        double s_bb = static_cast<double>(bb.cycles) /
                      static_cast<double>(native);
        std::printf("%-10s %11.1fx %11.1fx %8.2fx %8s\n", name.c_str(),
                    s_pi, s_bb, s_pi / s_bb,
                    pi.warp_count == bb.warp_count ? "match"
                                                   : "MISMATCH");
    }
    return 0;
}
