/**
 * @file
 * Microbenchmarks (google-benchmark) for the substrate and the NVBit
 * core primitives whose costs compose the paper's Section 5.2
 * decomposition: encoding/decoding, disassembly, PTX compilation,
 * module (de)serialisation, code-swap memcpys, cache-model lookups and
 * raw simulator execution throughput.
 *
 * Besides the google-benchmark suite, main() runs a direct comparison
 * of the four execution-engine configurations ({serial, parallel} x
 * {byte-decode, predecode}) and writes the timings plus decode-cache
 * hit/miss counts to BENCH_micro_core.json.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/timer.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "driver/module_image.hpp"
#include "isa/arch.hpp"
#include "ptx/compiler.hpp"
#include "sim/cache.hpp"
#include "sim/gpu.hpp"

namespace {

using namespace nvbit;

std::vector<isa::Instruction>
sampleProgram(size_t n)
{
    std::vector<isa::Instruction> prog;
    for (size_t i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            prog.push_back(isa::makeIAddImm(4, 5, static_cast<int>(i)));
            break;
          case 1:
            prog.push_back(isa::makeLoad(isa::Opcode::LDG, 6, 8,
                                         static_cast<int>(i) * 4));
            break;
          case 2:
            prog.push_back(isa::makeMovImm(7, 123));
            break;
          default:
            prog.push_back(isa::makeBra(-8, 2, false));
            break;
        }
    }
    return prog;
}

void
BM_EncodeDecode(benchmark::State &state)
{
    auto fam = static_cast<isa::ArchFamily>(state.range(0));
    auto prog = sampleProgram(1024);
    auto bytes = isa::encodeAll(fam, prog);
    const size_t ib = isa::instrBytes(fam);
    for (auto _ : state) {
        isa::Instruction out;
        for (size_t i = 0; i < prog.size(); ++i) {
            isa::decode(fam, bytes.data() + i * ib, out);
            benchmark::DoNotOptimize(out);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(prog.size()));
}
BENCHMARK(BM_EncodeDecode)->Arg(0)->Arg(1);

void
BM_Disassemble(benchmark::State &state)
{
    auto prog = sampleProgram(1024);
    for (auto _ : state) {
        for (const auto &in : prog) {
            std::string s = in.toString();
            benchmark::DoNotOptimize(s);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(prog.size()));
}
BENCHMARK(BM_Disassemble);

const char *kPtxSample = R"(
.visible .entry k(.param .u64 A, .param .u64 B, .param .u32 n)
{
    .reg .u32 %r<8>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mad.lo.u32 %r3, %r1, %r2, %tid.x;
    ld.param.u32 %r4, [n];
    setp.ge.u32 %p1, %r3, %r4;
    @%p1 bra DONE;
    ld.param.u64 %rd1, [A];
    mul.wide.u32 %rd2, %r3, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f1, [%rd3];
    mul.f32 %f2, %f1, 2.0;
    ld.param.u64 %rd4, [B];
    add.u64 %rd5, %rd4, %rd2;
    st.global.f32 [%rd5], %f2;
DONE:
    exit;
}
)";

void
BM_PtxCompile(benchmark::State &state)
{
    for (auto _ : state) {
        ptx::CompiledModule m =
            ptx::compile(kPtxSample, isa::ArchFamily::SM5x);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_PtxCompile);

void
BM_ModuleSerializeRoundTrip(benchmark::State &state)
{
    ptx::CompiledModule m =
        ptx::compile(kPtxSample, isa::ArchFamily::SM5x);
    for (auto _ : state) {
        std::vector<uint8_t> img = cudrv::serializeModule(m);
        cudrv::ModuleData out;
        bool ok = cudrv::deserializeModule(img.data(), img.size(), out);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_ModuleSerializeRoundTrip);

void
BM_CodeSwapMemcpy(benchmark::State &state)
{
    // Paper: swap cost == cudaMemcpy of the function's code bytes.
    sim::GpuConfig cfg;
    cfg.mem_bytes = 16 << 20;
    sim::GpuDevice gpu(cfg);
    size_t bytes = static_cast<size_t>(state.range(0));
    mem::DevPtr p = gpu.memory().alloc(bytes, 16);
    std::vector<uint8_t> host(bytes, 0xAB);
    for (auto _ : state) {
        gpu.memory().write(p, host.data(), bytes);
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(bytes));
}
BENCHMARK(BM_CodeSwapMemcpy)->Arg(1 << 10)->Arg(16 << 10)->Arg(256 << 10);

void
BM_CacheModel(benchmark::State &state)
{
    sim::Cache cache({128 * 1024, 4, 128});
    uint64_t addr = 0;
    for (auto _ : state) {
        addr += 128 * 7;
        benchmark::DoNotOptimize(cache.access(addr & ~uint64_t{127}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModel);

/**
 * Place the throughput kernel (64 ALU ops in a counted loop of 256
 * iterations) into @p gpu and return its launch parameters
 * (block 256, grid 4).
 */
sim::LaunchParams
placeLoopKernel(sim::GpuDevice &gpu, uint32_t block = 256)
{
    std::vector<isa::Instruction> prog;
    prog.push_back(isa::makeMovImm(4, 0));
    prog.push_back(isa::makeMovImm(5, 256));
    size_t loop_start = prog.size();
    for (int i = 0; i < 64; ++i)
        prog.push_back(isa::makeIAddImm(4, 4, 1));
    prog.push_back(isa::makeIAddImm(5, 5, -1));
    isa::Instruction setp;
    setp.op = isa::Opcode::ISETP;
    setp.mod = isa::modSetSetpDType(
        isa::modSetCmp(isa::kModSetpImm, isa::CmpOp::GT),
        isa::DType::U32);
    setp.rd = 0;
    setp.ra = 5;
    setp.imm = 0;
    prog.push_back(setp);
    int64_t back = -static_cast<int64_t>(
        (prog.size() + 1 - loop_start) *
        isa::instrBytes(gpu.family()));
    prog.push_back(isa::makeBra(back, 0, false));
    prog.push_back(isa::makeExit());

    auto bytes = isa::encodeAll(gpu.family(), prog);
    mem::DevPtr entry = gpu.memory().alloc(bytes.size(), 16);
    gpu.memory().write(entry, bytes.data(), bytes.size());

    sim::LaunchParams lp;
    lp.entry_pc = entry;
    lp.block[0] = block;
    lp.grid[0] = 4;
    return lp;
}

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Raw warp-instruction execution rate of the SIMT engine.
    sim::GpuConfig cfg;
    cfg.mem_bytes = 16 << 20;
    sim::GpuDevice gpu(cfg);
    sim::LaunchParams lp = placeLoopKernel(gpu);

    uint64_t warp_instrs = 0;
    uint64_t hits = 0, misses = 0;
    for (auto _ : state) {
        sim::LaunchStats st = gpu.launch(lp);
        warp_instrs += st.warp_instrs;
        hits += st.decode_cache_hits;
        misses += st.decode_cache_misses;
    }
    state.SetItemsProcessed(static_cast<int64_t>(warp_instrs));
    state.counters["thread_instr_rate"] = benchmark::Counter(
        static_cast<double>(warp_instrs) * 32.0,
        benchmark::Counter::kIsRate);
    state.counters["decode_cache_hits"] =
        benchmark::Counter(static_cast<double>(hits));
    state.counters["decode_cache_misses"] =
        benchmark::Counter(static_cast<double>(misses));
}
BENCHMARK(BM_SimulatorThroughput);

// ---------------------------------------------------------------------
// Engine-configuration comparison (BENCH_micro_core.json)
// ---------------------------------------------------------------------

struct EngineResult {
    const char *name;
    const char *kernel;
    sim::ExecMode mode;
    bool predecode;
    bool traces = false;
    double ms_per_launch = 0.0;
    double warp_mips = 0.0;
    uint64_t warp_instrs = 0;
    uint64_t decode_cache_hits = 0;
    uint64_t decode_cache_misses = 0;
    uint64_t pages_built = 0;
};

EngineResult
runEngine(const char *name, sim::ExecMode mode, bool predecode,
          uint32_t block, const char *kernel, int reps,
          uint64_t sample_period = 0, bool traces = false)
{
    sim::GpuConfig cfg;
    cfg.mem_bytes = 16 << 20;
    cfg.exec_mode = mode;
    cfg.use_predecode = predecode;
    cfg.use_traces = traces;
    cfg.pc_sample_period = sample_period;
    sim::GpuDevice gpu(cfg);
    sim::LaunchParams lp = placeLoopKernel(gpu, block);

    gpu.launch(lp); // warm-up (predecode pages, pool threads, traces)

    // Min over repetitions: robust against scheduler noise on a
    // loaded machine (any one launch can only be slowed down).
    EngineResult r{name, kernel, mode, predecode, traces, 0, 0, 0, 0, 0, 0};
    uint64_t best = UINT64_MAX;
    for (int i = 0; i < reps; ++i) {
        uint64_t t0 = nowNs();
        sim::LaunchStats st = gpu.launch(lp);
        uint64_t elapsed = nowNs() - t0;
        if (elapsed < best)
            best = elapsed;
        r.warp_instrs = st.warp_instrs;
        r.decode_cache_hits = st.decode_cache_hits;
        r.decode_cache_misses = st.decode_cache_misses;
    }
    r.ms_per_launch = static_cast<double>(best) / 1e6;
    r.warp_mips = static_cast<double>(r.warp_instrs) /
                  (static_cast<double>(best) / 1e3);
    r.pages_built = gpu.codeCache().pagesBuilt();
    return r;
}

void
emitEngineComparison()
{
    // Two kernels: "throughput" is backend-bound (32 active lanes per
    // warp instruction, execution dominates); "frontend" runs one lane
    // per warp so fetch+decode is a large fraction of the per-warp-
    // instruction cost — it isolates what the predecode cache removes.
    const EngineResult results[] = {
        runEngine("serial_bytedecode", sim::ExecMode::Serial, false, 256,
                  "throughput", 5),
        runEngine("serial_predecode", sim::ExecMode::Serial, true, 256,
                  "throughput", 5),
        runEngine("parallel_bytedecode", sim::ExecMode::Parallel, false,
                  256, "throughput", 5),
        runEngine("parallel_predecode", sim::ExecMode::Parallel, true,
                  256, "throughput", 5),
        runEngine("serial_bytedecode", sim::ExecMode::Serial, false, 1,
                  "frontend", 40),
        runEngine("serial_predecode", sim::ExecMode::Serial, true, 1,
                  "frontend", 40),
        // PC sampling enabled on the default engine: the disabled cost
        // must stay one relaxed load in the scheduler hot loop, so the
        // throughput ratio vs row [3] bounds the sampling machinery.
        runEngine("parallel_predecode_sampled", sim::ExecMode::Parallel,
                  true, 256, "throughput", 5, 1000),
        // Trace-compiled threaded-code engine: superblocks of the hot
        // loop body execute as pre-bound handler arrays.  The serial
        // row against row [1] is the trace_speedup acceptance ratio.
        runEngine("serial_traced", sim::ExecMode::Serial, true, 256,
                  "throughput", 5, 0, true),
        runEngine("parallel_traced", sim::ExecMode::Parallel, true, 256,
                  "throughput", 5, 0, true),
    };

    std::printf("\nExecution-engine comparison (loop kernel, grid 4)\n");
    std::printf("%-12s %-22s %12s %12s %14s %14s\n", "kernel", "engine",
                "ms/launch", "warp MIPS", "decode hits",
                "decode misses");
    for (const auto &r : results)
        std::printf("%-12s %-22s %12.3f %12.2f %14llu %14llu\n",
                    r.kernel, r.name, r.ms_per_launch, r.warp_mips,
                    static_cast<unsigned long long>(r.decode_cache_hits),
                    static_cast<unsigned long long>(r.decode_cache_misses));

    const char *path = "BENCH_micro_core.json";
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"engine_comparison\": [\n");
    size_t n = sizeof(results) / sizeof(results[0]);
    for (size_t i = 0; i < n; ++i) {
        const auto &r = results[i];
        std::fprintf(
            f,
            "    {\"engine\": \"%s\", \"kernel\": \"%s\", "
            "\"exec_mode\": \"%s\", "
            "\"predecode\": %s, \"traces\": %s, \"ms_per_launch\": %.3f, "
            "\"warp_mips\": %.2f, \"warp_instrs\": %llu, "
            "\"decode_cache_hits\": %llu, "
            "\"decode_cache_misses\": %llu, \"pages_built\": %llu}%s\n",
            r.name, r.kernel,
            r.mode == sim::ExecMode::Serial ? "serial" : "parallel",
            r.predecode ? "true" : "false", r.traces ? "true" : "false",
            r.ms_per_launch, r.warp_mips,
            static_cast<unsigned long long>(r.warp_instrs),
            static_cast<unsigned long long>(r.decode_cache_hits),
            static_cast<unsigned long long>(r.decode_cache_misses),
            static_cast<unsigned long long>(r.pages_built),
            i + 1 < n ? "," : "");
    }
    auto ratio = [](const EngineResult &a, const EngineResult &b) {
        return b.ms_per_launch > 0 ? a.ms_per_launch / b.ms_per_launch
                                   : 0.0;
    };
    double sp_default = ratio(results[0], results[3]);
    double sp_pre_tp = ratio(results[0], results[1]);
    double sp_pre_fe = ratio(results[4], results[5]);
    double samp_ovh = ratio(results[6], results[3]);
    double sp_trace = ratio(results[1], results[7]);
    std::fprintf(f,
                 "  ],\n"
                 "  \"speedup_default_vs_reference\": %.3f,\n"
                 "  \"speedup_predecode_throughput\": %.3f,\n"
                 "  \"speedup_predecode_frontend\": %.3f,\n"
                 "  \"sampling_overhead_throughput\": %.3f,\n"
                 "  \"trace_speedup\": %.3f\n}\n",
                 sp_default, sp_pre_tp, sp_pre_fe, samp_ovh, sp_trace);
    std::fclose(f);
    std::printf("wrote %s (predecode speedup: %.2fx throughput kernel, "
                "%.2fx frontend kernel; default engine vs reference: "
                "%.2fx; trace speedup: %.2fx)\n",
                path, sp_pre_tp, sp_pre_fe, sp_default, sp_trace);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    emitEngineComparison();
    return 0;
}
