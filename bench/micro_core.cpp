/**
 * @file
 * Microbenchmarks (google-benchmark) for the substrate and the NVBit
 * core primitives whose costs compose the paper's Section 5.2
 * decomposition: encoding/decoding, disassembly, PTX compilation,
 * module (de)serialisation, code-swap memcpys, cache-model lookups and
 * raw simulator execution throughput.
 */
#include <benchmark/benchmark.h>

#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "driver/module_image.hpp"
#include "isa/arch.hpp"
#include "ptx/compiler.hpp"
#include "sim/cache.hpp"
#include "sim/gpu.hpp"

namespace {

using namespace nvbit;

std::vector<isa::Instruction>
sampleProgram(size_t n)
{
    std::vector<isa::Instruction> prog;
    for (size_t i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            prog.push_back(isa::makeIAddImm(4, 5, static_cast<int>(i)));
            break;
          case 1:
            prog.push_back(isa::makeLoad(isa::Opcode::LDG, 6, 8,
                                         static_cast<int>(i) * 4));
            break;
          case 2:
            prog.push_back(isa::makeMovImm(7, 123));
            break;
          default:
            prog.push_back(isa::makeBra(-8, 2, false));
            break;
        }
    }
    return prog;
}

void
BM_EncodeDecode(benchmark::State &state)
{
    auto fam = static_cast<isa::ArchFamily>(state.range(0));
    auto prog = sampleProgram(1024);
    auto bytes = isa::encodeAll(fam, prog);
    const size_t ib = isa::instrBytes(fam);
    for (auto _ : state) {
        isa::Instruction out;
        for (size_t i = 0; i < prog.size(); ++i) {
            isa::decode(fam, bytes.data() + i * ib, out);
            benchmark::DoNotOptimize(out);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(prog.size()));
}
BENCHMARK(BM_EncodeDecode)->Arg(0)->Arg(1);

void
BM_Disassemble(benchmark::State &state)
{
    auto prog = sampleProgram(1024);
    for (auto _ : state) {
        for (const auto &in : prog) {
            std::string s = in.toString();
            benchmark::DoNotOptimize(s);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(prog.size()));
}
BENCHMARK(BM_Disassemble);

const char *kPtxSample = R"(
.visible .entry k(.param .u64 A, .param .u64 B, .param .u32 n)
{
    .reg .u32 %r<8>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mad.lo.u32 %r3, %r1, %r2, %tid.x;
    ld.param.u32 %r4, [n];
    setp.ge.u32 %p1, %r3, %r4;
    @%p1 bra DONE;
    ld.param.u64 %rd1, [A];
    mul.wide.u32 %rd2, %r3, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f1, [%rd3];
    mul.f32 %f2, %f1, 2.0;
    ld.param.u64 %rd4, [B];
    add.u64 %rd5, %rd4, %rd2;
    st.global.f32 [%rd5], %f2;
DONE:
    exit;
}
)";

void
BM_PtxCompile(benchmark::State &state)
{
    for (auto _ : state) {
        ptx::CompiledModule m =
            ptx::compile(kPtxSample, isa::ArchFamily::SM5x);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_PtxCompile);

void
BM_ModuleSerializeRoundTrip(benchmark::State &state)
{
    ptx::CompiledModule m =
        ptx::compile(kPtxSample, isa::ArchFamily::SM5x);
    for (auto _ : state) {
        std::vector<uint8_t> img = cudrv::serializeModule(m);
        cudrv::ModuleData out;
        bool ok = cudrv::deserializeModule(img.data(), img.size(), out);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_ModuleSerializeRoundTrip);

void
BM_CodeSwapMemcpy(benchmark::State &state)
{
    // Paper: swap cost == cudaMemcpy of the function's code bytes.
    sim::GpuConfig cfg;
    cfg.mem_bytes = 16 << 20;
    sim::GpuDevice gpu(cfg);
    size_t bytes = static_cast<size_t>(state.range(0));
    mem::DevPtr p = gpu.memory().alloc(bytes, 16);
    std::vector<uint8_t> host(bytes, 0xAB);
    for (auto _ : state) {
        gpu.memory().write(p, host.data(), bytes);
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(bytes));
}
BENCHMARK(BM_CodeSwapMemcpy)->Arg(1 << 10)->Arg(16 << 10)->Arg(256 << 10);

void
BM_CacheModel(benchmark::State &state)
{
    sim::Cache cache({128 * 1024, 4, 128});
    uint64_t addr = 0;
    for (auto _ : state) {
        addr += 128 * 7;
        benchmark::DoNotOptimize(cache.access(addr & ~uint64_t{127}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModel);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Raw warp-instruction execution rate of the SIMT engine.
    sim::GpuConfig cfg;
    cfg.mem_bytes = 16 << 20;
    sim::GpuDevice gpu(cfg);
    std::vector<isa::Instruction> prog;
    prog.push_back(isa::makeMovImm(4, 0));
    // 64 ALU ops in a counted loop of 256 iterations.
    prog.push_back(isa::makeMovImm(5, 256));
    size_t loop_start = prog.size();
    for (int i = 0; i < 64; ++i)
        prog.push_back(isa::makeIAddImm(4, 4, 1));
    prog.push_back(isa::makeIAddImm(5, 5, -1));
    isa::Instruction setp;
    setp.op = isa::Opcode::ISETP;
    setp.mod = isa::modSetSetpDType(
        isa::modSetCmp(isa::kModSetpImm, isa::CmpOp::GT),
        isa::DType::U32);
    setp.rd = 0;
    setp.ra = 5;
    setp.imm = 0;
    prog.push_back(setp);
    int64_t back = -static_cast<int64_t>(
        (prog.size() + 1 - loop_start) *
        isa::instrBytes(gpu.family()));
    prog.push_back(isa::makeBra(back, 0, false));
    prog.push_back(isa::makeExit());

    auto bytes = isa::encodeAll(gpu.family(), prog);
    mem::DevPtr entry = gpu.memory().alloc(bytes.size(), 16);
    gpu.memory().write(entry, bytes.data(), bytes.size());

    sim::LaunchParams lp;
    lp.entry_pc = entry;
    lp.block[0] = 256;
    lp.grid[0] = 4;

    uint64_t warp_instrs = 0;
    for (auto _ : state) {
        sim::LaunchStats st = gpu.launch(lp);
        warp_instrs += st.warp_instrs;
    }
    state.SetItemsProcessed(static_cast<int64_t>(warp_instrs));
    state.counters["thread_instr_rate"] = benchmark::Counter(
        static_cast<double>(warp_instrs) * 32.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

} // namespace

BENCHMARK_MAIN();
