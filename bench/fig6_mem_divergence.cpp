/**
 * @file
 * Figure 6: memory-access address divergence of ML workloads, with the
 * pre-compiled accelerated libraries instrumented vs excluded, plus
 * the paper's supporting statistic: the share of executed instructions
 * inside the libraries (74-96%, average 88% in the paper).
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "tools/mem_divergence.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

int
main(int argc, char **argv)
{
    // `--smoke` switches to the test problem size; CI uses it as a
    // fast artifact-path check, not a measurement.
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    workloads::ProblemSize size = smoke ? workloads::ProblemSize::Test
                                        : workloads::ProblemSize::Medium;
    std::printf("Figure 6: avg unique 32B sectors per warp-level "
                "global memory instruction\n");
    std::printf("%-12s %12s %12s %10s %16s\n", "workload", "libs incl.",
                "libs excl.", "overest.", "instrs in libs");

    double share_sum = 0.0, share_min = 1e9, share_max = 0.0;
    size_t count = 0;
    std::vector<bench::JsonRow> rows;

    for (const std::string &name : workloads::mlSuiteNames()) {
        double div_with = 0.0, div_without = 0.0, lib_share = 0.0;

        // Native pass: measure the library-instruction share on the
        // uninstrumented program (the paper's 74-96% statistic).
        {
            NvbitTool passive;
            runApp(passive, [&] {
                checkCu(cuInit(0), "cuInit");
                CUcontext ctx;
                checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
                auto wl = workloads::makeMlWorkload(name);
                wl->run(size);
                uint64_t lib = 0;
                for (const auto &[mod, st] : perModuleStats()) {
                    for (CUmodule m : wl->libraryModules())
                        if (mod == m)
                            lib += st.thread_instrs;
                }
                lib_share =
                    100.0 * static_cast<double>(lib) /
                    static_cast<double>(
                        deviceTotalStats().thread_instrs);
            });
        }

        for (bool include_libs : {true, false}) {
            tools::MemDivergenceTool tool;
            runApp(tool, [&] {
                checkCu(cuInit(0), "cuInit");
                CUcontext ctx;
                checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
                auto wl = workloads::makeMlWorkload(name);
                if (!include_libs) {
                    auto *wlp = wl.get();
                    tool.setFunctionFilter([wlp](CUfunction f) {
                        for (CUmodule m : wlp->libraryModules())
                            if (f->mod == m)
                                return false;
                        return true;
                    });
                }
                wl->run(size);
                if (include_libs)
                    div_with = tool.divergence();
                else
                    div_without = tool.divergence();
            });
        }
        std::printf("%-12s %12.3f %12.3f %9.2fx %15.1f%%\n",
                    name.c_str(), div_with, div_without,
                    div_with > 0 ? div_without / div_with : 0.0,
                    lib_share);
        rows.push_back(
            {{"workload", bench::jStr(name)},
             {"divergence_libs_included", bench::jNum(div_with)},
             {"divergence_libs_excluded", bench::jNum(div_without)},
             {"overestimation",
              bench::jNum(div_with > 0 ? div_without / div_with : 0.0)},
             {"lib_instr_share_pct", bench::jNum(lib_share)}});
        share_sum += lib_share;
        share_min = std::min(share_min, lib_share);
        share_max = std::max(share_max, lib_share);
        ++count;
    }

    std::printf("\ninstructions inside pre-compiled libraries: "
                "%.0f%%-%.0f%%, mean %.0f%% "
                "(paper: 74%%-96%%, mean 88%%)\n",
                share_min, share_max,
                share_sum / static_cast<double>(count));
    std::printf("excluding the libraries (a compiler-based tool's "
                "view) overestimates divergence for every workload, "
                "as in the paper.\n");
    bench::writeBenchJson(
        "fig6_mem_divergence", "workloads", rows,
        {{"lib_share_min_pct", bench::jNum(share_min)},
         {"lib_share_max_pct", bench::jNum(share_max)},
         {"lib_share_mean_pct",
          bench::jNum(share_sum / static_cast<double>(count))},
         {"problem_size", bench::jStr(smoke ? "test" : "medium")}});
    return 0;
}
