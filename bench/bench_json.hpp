/**
 * @file
 * Tiny JSON emitter shared by the bench targets: every figure/table
 * binary writes a machine-readable `BENCH_<name>.json` next to its
 * console output so CI can archive results as artifacts (the
 * convention micro_core.cpp established).
 *
 * Values are pre-encoded JSON fragments; use the j* helpers.  Field
 * order is preserved, so the output is deterministic for a given run.
 */
#ifndef NVBIT_BENCH_BENCH_JSON_HPP
#define NVBIT_BENCH_BENCH_JSON_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace nvbit::bench {

/** One JSON object as ordered (key, pre-encoded value) pairs. */
using JsonRow = std::vector<std::pair<std::string, std::string>>;

inline std::string
jStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

inline std::string
jNum(double v, int precision = 4)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string
jNum(uint64_t v)
{
    return std::to_string(v);
}

inline std::string
jBool(bool v)
{
    return v ? "true" : "false";
}

inline std::string
encodeRow(const JsonRow &row)
{
    std::string out = "{";
    for (size_t i = 0; i < row.size(); ++i) {
        if (i)
            out += ", ";
        out += jStr(row[i].first) + ": " + row[i].second;
    }
    out += "}";
    return out;
}

/** Encode a row array (used for nested values and the rows field). */
inline std::string
encodeRows(const std::vector<JsonRow> &rows)
{
    std::string out = "[";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i)
            out += ", ";
        out += encodeRow(rows[i]);
    }
    out += "]";
    return out;
}

/**
 * Write `BENCH_<bench>.json` into the working directory (CI runs the
 * bench binaries from the repo root, so that is where artifacts land):
 * a row array under @p rows_key plus top-level summary fields.
 * Returns false (with a note on stderr) if the file cannot be opened.
 */
inline bool
writeBenchJson(const std::string &bench, const std::string &rows_key,
               const std::vector<JsonRow> &rows, const JsonRow &summary)
{
    std::string path = "BENCH_" + bench + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  %s: [", jStr(rows_key).c_str());
    for (size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f, "%s\n    %s", i ? "," : "",
                     encodeRow(rows[i]).c_str());
    std::fprintf(f, "\n  ]");
    for (const auto &[key, value] : summary)
        std::fprintf(f, ",\n  %s: %s", jStr(key).c_str(), value.c_str());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace nvbit::bench

#endif // NVBIT_BENCH_BENCH_JSON_HPP
