/**
 * @file
 * PC-sampling overhead: host-side wall-clock cost of running the
 * deterministic PC-sampling engine at various periods, vs the same
 * workloads with sampling disabled.
 *
 * Two invariants this bench also checks (and reports as columns):
 *   - sampling is passive, so the *simulated* cycle count must be
 *     bit-identical with and without it (`cycles_delta` is 0);
 *   - the sample count scales ~1/period (same cycles, fixed stride).
 *
 * `--smoke` switches to the test problem size; CI uses it as a fast
 * end-to-end check (wall-clock ratios are noise at that size).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "obs/profile.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

struct RunResult {
    uint64_t cycles = 0;
    uint64_t samples = 0;
    double wall_ms = 0.0;
};

RunResult
runOnce(const std::string &name, workloads::ProblemSize size,
        uint64_t period)
{
    obs::Profiler &prof = obs::Profiler::instance();
    prof.reset();
    prof.requestPeriod(period);

    RunResult res;
    NvbitTool passive;
    auto t0 = std::chrono::steady_clock::now();
    runApp(passive, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(size);
        res.cycles = deviceTotalStats().cycles;
    });
    auto t1 = std::chrono::steady_clock::now();
    res.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    res.samples = prof.totalSamples();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    workloads::ProblemSize size = smoke ? workloads::ProblemSize::Test
                                        : workloads::ProblemSize::Large;
    const uint64_t period = smoke ? 100 : 1000;

    std::printf("PC-sampling overhead (period %llu cycles, host "
                "wall-clock)\n",
                static_cast<unsigned long long>(period));
    std::printf("%-10s %10s %10s %9s %12s %12s\n", "workload",
                "off_ms", "on_ms", "overhead", "samples",
                "cycles_delta");

    double ratio_sum = 0.0;
    size_t n = 0;
    uint64_t delta_sum = 0;
    std::vector<bench::JsonRow> rows;
    for (const std::string &name : workloads::specSuiteNames()) {
        RunResult off = runOnce(name, size, 0);
        RunResult on = runOnce(name, size, period);

        double ratio = on.wall_ms / off.wall_ms;
        uint64_t delta = on.cycles > off.cycles
                             ? on.cycles - off.cycles
                             : off.cycles - on.cycles;
        std::printf("%-10s %9.2f %9.2f %8.3fx %12llu %12llu\n",
                    name.c_str(), off.wall_ms, on.wall_ms, ratio,
                    static_cast<unsigned long long>(on.samples),
                    static_cast<unsigned long long>(delta));
        rows.push_back(
            {{"workload", bench::jStr(name)},
             {"off_ms", bench::jNum(off.wall_ms)},
             {"on_ms", bench::jNum(on.wall_ms)},
             {"overhead", bench::jNum(ratio)},
             {"samples", bench::jNum(on.samples)},
             {"cycles_delta", bench::jNum(delta)}});
        ratio_sum += ratio;
        delta_sum += delta;
        ++n;
    }
    std::printf("%-10s %31.3fx\n", "mean",
                ratio_sum / static_cast<double>(n));
    if (delta_sum != 0)
        std::printf("WARNING: sampling changed simulated cycles "
                    "(delta_sum %llu) — it must be passive\n",
                    static_cast<unsigned long long>(delta_sum));
    bench::writeBenchJson(
        "fig_pcsamp_overhead", "workloads", rows,
        {{"period", bench::jNum(period)},
         {"mean_overhead",
          bench::jNum(ratio_sum / static_cast<double>(n))},
         {"cycles_delta_sum", bench::jNum(delta_sum)},
         {"problem_size", bench::jStr(smoke ? "test" : "large")}});
    return delta_sum == 0 ? 0 : 1;
}
