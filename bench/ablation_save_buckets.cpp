/**
 * @file
 * Ablation: value of NVBit's register-requirement analysis.
 *
 * The paper's Code Generator "saves only the minimum amount of general
 * purpose registers, and the appropriate save routine is selected by
 * analyzing the register requirements of both the original code and
 * injected function".  This benchmark compares that design against the
 * naive alternative (always preserving the full register file) on
 * instruction-count instrumentation.
 */
#include <cstdio>
#include <string>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "tools/instr_count.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

uint64_t
runInstrumented(const std::string &name, bool full_save)
{
    nvbit_set_save_all_registers(full_save);
    tools::InstrCountTool tool;
    uint64_t cycles = 0;
    runApp(tool, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(workloads::ProblemSize::Medium);
        cycles = deviceTotalStats().cycles;
    });
    nvbit_set_save_all_registers(false);
    return cycles;
}

uint64_t
runNative(const std::string &name)
{
    NvbitTool passive;
    uint64_t cycles = 0;
    runApp(passive, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(workloads::ProblemSize::Medium);
        cycles = deviceTotalStats().cycles;
    });
    return cycles;
}

} // namespace

int
main()
{
    std::printf("Ablation: minimal save/restore buckets vs full "
                "register-file save (instr-count tool, medium size)\n");
    std::printf("%-10s %14s %14s %10s\n", "workload", "min-save",
                "full-save", "penalty");

    double penalty_sum = 0.0;
    size_t n = 0;
    for (const std::string &name :
         {std::string("ostencil"), std::string("palm"),
          std::string("cg"), std::string("omriq"),
          std::string("miniGhost")}) {
        uint64_t native = runNative(name);
        uint64_t min_save = runInstrumented(name, false);
        uint64_t full_save = runInstrumented(name, true);
        double s_min = static_cast<double>(min_save) /
                       static_cast<double>(native);
        double s_full = static_cast<double>(full_save) /
                        static_cast<double>(native);
        std::printf("%-10s %12.1fx %12.1fx %9.2fx\n", name.c_str(),
                    s_min, s_full, s_full / s_min);
        penalty_sum += s_full / s_min;
        ++n;
    }
    std::printf("\nmean slowdown penalty of skipping the analysis: "
                "%.2fx\n", penalty_sum / static_cast<double>(n));
    return 0;
}
