/**
 * @file
 * Section 6.3 result table: warp-level kernel instruction counts for a
 * 32-point FFT, with the hypothetical WFFT32 instruction (emulated by
 * NVBit) vs a software warp-shuffle FFT.  The paper reports 21 vs 150
 * instructions per warp (~7x); the shape to reproduce is a large
 * single-instruction win with numerically identical results.
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_json.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "tools/instr_count.hpp"
#include "tools/wfft_emulator.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

const char *kProxyKernel = R"(
.visible .entry fft_hw(.param .u64 re_io, .param .u64 im_io)
{
    .reg .u32 %r<8>;
    .reg .u64 %rd<12>;
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd1, %r1, 4;
    ld.param.u64 %rd2, [re_io];
    add.u64 %rd3, %rd2, %rd1;
    ld.global.u32 %r2, [%rd3];
    ld.param.u64 %rd4, [im_io];
    add.u64 %rd5, %rd4, %rd1;
    ld.global.u32 %r3, [%rd5];
    cvt.u64.u32 %rd6, %r2;
    cvt.u64.u32 %rd7, %r3;
    shl.b64 %rd7, %rd7, 32;
    add.u64 %rd8, %rd6, %rd7;
    proxyop.b64 %rd9, %rd8, 32;
    cvt.u32.u64 %r4, %rd9;
    shr.u64 %rd10, %rd9, 32;
    cvt.u32.u64 %r5, %rd10;
    st.global.u32 [%rd3], %r4;
    st.global.u32 [%rd5], %r5;
    exit;
}
)";

std::string
softwareKernel()
{
    std::string src;
    src += ".visible .entry fft_sw(.param .u64 re_io, "
           ".param .u64 im_io)\n{\n";
    src += "    .reg .u32 %r<8>;\n    .reg .u64 %rd<12>;\n";
    src += "    .reg .f32 %fre<2>;\n    .reg .f32 %fim<2>;\n";
    src += tools::wfftScratchDecls();
    src += R"(
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd1, %r1, 4;
    ld.param.u64 %rd2, [re_io];
    add.u64 %rd3, %rd2, %rd1;
    ld.global.f32 %fre1, [%rd3];
    ld.param.u64 %rd4, [im_io];
    add.u64 %rd5, %rd4, %rd1;
    ld.global.f32 %fim1, [%rd5];
)";
    src += tools::wfftButterflyPtx("%fre1", "%fim1");
    src += R"(
    st.global.f32 [%rd3], %fre1;
    st.global.f32 [%rd5], %fim1;
    exit;
}
)";
    return src;
}

/** Combined emulation + per-warp instruction counting tool. */
class CombinedTool : public tools::WfftEmulatorTool
{
  public:
    CombinedTool()
    {
        exportDeviceFunctions(R"(
.global .u64 wcnt;
.func wcnt_probe(.param .u32 pred)
{
    .reg .u32 %a<8>;
    .reg .u64 %rd<4>;
    .reg .pred %p<3>;
    vote.ballot.b32 %a4, 1;
    mov.u32 %a5, %laneid;
    mov.u32 %a6, 1;
    shl.b32 %a6, %a6, %a5;
    sub.u32 %a6, %a6, 1;
    and.b32 %a6, %a4, %a6;
    setp.ne.u32 %p2, %a6, 0;
    @%p2 bra SKIP;
    mov.u64 %rd1, wcnt;
    mov.u64 %rd2, 1;
    atom.global.add.u64 %rd3, [%rd1], %rd2;
SKIP:
    ret;
}
)");
    }

    uint64_t
    warpInstrs() const
    {
        uint64_t v = 0;
        nvbit_read_tool_global("wcnt", &v, sizeof(v));
        return v;
    }

  protected:
    void
    instrumentFunction(CUcontext ctx, CUfunction f) override
    {
        tools::WfftEmulatorTool::instrumentFunction(ctx, f);
        for (Instr *i : nvbit_get_instrs(ctx, f)) {
            nvbit_insert_call(i, "wcnt_probe", IPOINT_BEFORE);
            nvbit_add_call_arg_guard_pred_val(i);
        }
    }
};

uint64_t
runOne(const char *kname, const std::string &src,
       std::vector<float> &re, std::vector<float> &im)
{
    CombinedTool tool;
    uint64_t count = 0;
    runApp(tool, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        CUmodule mod;
        checkCu(cuModuleLoadData(&mod, src.c_str(), src.size()),
                "load");
        CUfunction fn;
        checkCu(cuModuleGetFunction(&fn, mod, kname), "get");
        CUdeviceptr dre, dim;
        checkCu(cuMemAlloc(&dre, 128), "a");
        checkCu(cuMemAlloc(&dim, 128), "a");
        checkCu(cuMemcpyHtoD(dre, re.data(), 128), "h2d");
        checkCu(cuMemcpyHtoD(dim, im.data(), 128), "h2d");
        void *params[] = {&dre, &dim};
        checkCu(cuLaunchKernel(fn, 1, 1, 1, 32, 1, 1, 0, nullptr,
                               params, nullptr),
                "launch");
        checkCu(cuMemcpyDtoH(re.data(), dre, 128), "d2h");
        checkCu(cuMemcpyDtoH(im.data(), dim, 128), "d2h");
        count = tool.warpInstrs();
    });
    return count;
}

} // namespace

int
main(int argc, char **argv)
{
    // The 32-point FFT is already its own smallest problem; `--smoke`
    // is accepted (so CI can drive every figure uniformly) and only
    // recorded in the artifact.
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    std::vector<float> re0(32), im0(32);
    for (int i = 0; i < 32; ++i) {
        re0[i] = std::sin(0.37f * static_cast<float>(i)) + 0.2f;
        im0[i] = std::cos(0.18f * static_cast<float>(i));
    }

    std::vector<float> hw_re = re0, hw_im = im0;
    uint64_t hw = runOne("fft_hw", kProxyKernel, hw_re, hw_im);
    std::vector<float> sw_re = re0, sw_im = im0;
    uint64_t sw = runOne("fft_sw", softwareKernel(), sw_re, sw_im);

    double max_diff = 0.0;
    for (int i = 0; i < 32; ++i) {
        max_diff = std::max(
            {max_diff,
             std::fabs(static_cast<double>(hw_re[i] - sw_re[i])),
             std::fabs(static_cast<double>(hw_im[i] - sw_im[i]))});
    }

    std::printf("Section 6.3 table: 32-point warp-wide FFT\n");
    std::printf("%-36s %10s\n", "variant", "instrs/warp");
    std::printf("%-36s %10llu\n", "WFFT32 instruction (emulated)",
                static_cast<unsigned long long>(hw));
    std::printf("%-36s %10llu\n", "software warp-shuffle FFT",
                static_cast<unsigned long long>(sw));
    std::printf("reduction: %.1fx   (paper: 21 vs 150, ~7.1x)\n",
                static_cast<double>(sw) / static_cast<double>(hw));
    std::printf("max result difference: %.3e\n", max_diff);
    bench::writeBenchJson(
        "tab_wfft_emulation", "variants",
        {{{"variant", bench::jStr("wfft32_emulated")},
          {"warp_instrs", bench::jNum(hw)}},
         {{"variant", bench::jStr("software_shuffle_fft")},
          {"warp_instrs", bench::jNum(sw)}}},
        {{"reduction", bench::jNum(static_cast<double>(sw) /
                                   static_cast<double>(hw))},
         {"max_result_diff", bench::jNum(max_diff, 9)},
         {"problem_size", bench::jStr(smoke ? "test" : "full")}});
    return max_diff < 1e-4 ? 0 : 1;
}
