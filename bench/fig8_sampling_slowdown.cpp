/**
 * @file
 * Figure 8: slowdown of full instrumentation vs grid-dimension
 * sampling, relative to native execution (large problem sizes,
 * instruction-histogram tool — the paper's Section 6.2 experiment).
 *
 * Slowdowns are ratios of simulated device cycles, which is the
 * meaningful cost metric inside the simulator.  Expected shape
 * (paper): full instrumentation averages ~36x (up to ~112x); sampling
 * cuts this to ~2.3x.
 *
 * `--smoke` switches to the test problem size; CI uses it as a fast
 * end-to-end check (the ratios are not meaningful at that size).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "tools/opcode_histogram.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;
using tools::OpcodeHistogramTool;

namespace {

uint64_t
runCycles(const std::string &name, OpcodeHistogramTool *tool,
          workloads::ProblemSize size)
{
    uint64_t cycles = 0;
    auto app = [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(size);
        cycles = deviceTotalStats().cycles;
    };
    if (tool) {
        runApp(*tool, app);
    } else {
        NvbitTool passive;
        runApp(passive, app);
    }
    return cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    workloads::ProblemSize size = smoke ? workloads::ProblemSize::Test
                                        : workloads::ProblemSize::Large;
    std::printf("Figure 8: slowdown vs native execution "
                "(simulated cycles)\n");
    std::printf("%-10s %12s %12s\n", "workload", "full", "sampling");

    double full_sum = 0.0, samp_sum = 0.0, full_max = 0.0;
    size_t n = 0;
    std::vector<bench::JsonRow> rows;
    for (const std::string &name : workloads::specSuiteNames()) {
        uint64_t native = runCycles(name, nullptr, size);

        OpcodeHistogramTool full(OpcodeHistogramTool::Mode::Full);
        uint64_t full_c = runCycles(name, &full, size);

        OpcodeHistogramTool sampled(
            OpcodeHistogramTool::Mode::SampleGridDim);
        uint64_t samp_c = runCycles(name, &sampled, size);

        double fs = static_cast<double>(full_c) /
                    static_cast<double>(native);
        double ss = static_cast<double>(samp_c) /
                    static_cast<double>(native);
        std::printf("%-10s %11.1fx %11.2fx\n", name.c_str(), fs, ss);
        rows.push_back({{"workload", bench::jStr(name)},
                        {"full_slowdown", bench::jNum(fs)},
                        {"sampling_slowdown", bench::jNum(ss)}});
        full_sum += fs;
        samp_sum += ss;
        full_max = std::max(full_max, fs);
        ++n;
    }
    std::printf("%-10s %11.1fx %11.2fx\n", "mean",
                full_sum / static_cast<double>(n),
                samp_sum / static_cast<double>(n));
    std::printf("\npaper: full mean 36.4x (max 112x), sampling mean "
                "2.3x\n");
    bench::writeBenchJson(
        "fig8_sampling_slowdown", "workloads", rows,
        {{"full_mean", bench::jNum(full_sum / static_cast<double>(n))},
         {"full_max", bench::jNum(full_max)},
         {"sampling_mean",
          bench::jNum(samp_sum / static_cast<double>(n))},
         {"problem_size", bench::jStr(smoke ? "test" : "large")}});
    return 0;
}
