/**
 * @file
 * Figure 7: Top-5 executed-instruction histogram per benchmark (large
 * problem sizes), collected with the sampling-enabled histogram tool.
 */
#include <cstdio>
#include <string>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "tools/opcode_histogram.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;
using tools::OpcodeHistogramTool;

int
main()
{
    std::printf("Figure 7: Top-5 executed instructions per benchmark "
                "(%% of thread-level instructions)\n");
    for (const std::string &name : workloads::specSuiteNames()) {
        OpcodeHistogramTool tool(
            OpcodeHistogramTool::Mode::SampleGridDim);
        runApp(tool, [&] {
            checkCu(cuInit(0), "cuInit");
            CUcontext ctx;
            checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
            auto wl = workloads::makeSpecWorkload(name);
            wl->run(workloads::ProblemSize::Large);
        });

        uint64_t total = 0;
        for (uint64_t v : tool.counts())
            total += v;
        std::printf("%-10s:", name.c_str());
        for (const auto &[op, cnt] : tool.topN(5)) {
            std::printf(" %s %.1f%%", op.c_str(),
                        100.0 * static_cast<double>(cnt) /
                            static_cast<double>(total));
        }
        std::printf("\n");
    }
    return 0;
}
