/**
 * @file
 * Figure 7: Top-5 executed-instruction histogram per benchmark (large
 * problem sizes), collected with the sampling-enabled histogram tool.
 *
 * `--smoke` switches to the test problem size; CI uses it as a fast
 * end-to-end check that the bench path still runs and emits its
 * BENCH_*.json artifact.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "tools/opcode_histogram.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;
using tools::OpcodeHistogramTool;

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    workloads::ProblemSize size = smoke ? workloads::ProblemSize::Test
                                        : workloads::ProblemSize::Large;

    std::printf("Figure 7: Top-5 executed instructions per benchmark "
                "(%% of thread-level instructions)\n");
    std::vector<bench::JsonRow> rows;
    for (const std::string &name : workloads::specSuiteNames()) {
        OpcodeHistogramTool tool(
            OpcodeHistogramTool::Mode::SampleGridDim);
        runApp(tool, [&] {
            checkCu(cuInit(0), "cuInit");
            CUcontext ctx;
            checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
            auto wl = workloads::makeSpecWorkload(name);
            wl->run(size);
        });

        uint64_t total = 0;
        for (uint64_t v : tool.counts())
            total += v;
        std::printf("%-10s:", name.c_str());
        std::vector<bench::JsonRow> top5;
        for (const auto &[op, cnt] : tool.topN(5)) {
            double share = 100.0 * static_cast<double>(cnt) /
                           static_cast<double>(total);
            std::printf(" %s %.1f%%", op.c_str(), share);
            top5.push_back({{"op", bench::jStr(op)},
                            {"share_pct", bench::jNum(share)}});
        }
        std::printf("\n");
        rows.push_back({{"workload", bench::jStr(name)},
                        {"thread_instrs", bench::jNum(total)},
                        {"top5", bench::encodeRows(top5)}});
    }
    bench::writeBenchJson(
        "fig7_instr_histogram", "workloads", rows,
        {{"problem_size", bench::jStr(smoke ? "test" : "large")}});
    return 0;
}
