/**
 * @file
 * Hardware-counter collection overhead: host-side wall-clock cost of
 * running every workload with all event groups enabled vs with none.
 *
 * The load-bearing invariant this bench asserts (exit status!) is
 * *passivity*: the free-running counters never touch the cycle model,
 * so enabling every event group must change the simulated cycle count
 * by exactly zero (`cycles_delta` column, summed into the exit code).
 * The wall-clock ratio is informational — collection is a handful of
 * array adds per launch, so it should sit at ~1.0x.
 *
 * `--smoke` switches to the test problem size; CI uses it as a fast
 * end-to-end check (wall-clock ratios are noise at that size).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/event_groups.hpp"
#include "driver/internal.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

struct RunResult {
    uint64_t cycles = 0;
    uint64_t inst_executed = 0;
    double wall_ms = 0.0;
};

RunResult
runOnce(const std::string &name, workloads::ProblemSize size,
        bool collect)
{
    RunResult res;
    NvbitTool passive;
    auto t0 = std::chrono::steady_clock::now();
    runApp(passive, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        CUeventGroup grp = nullptr;
        if (collect) {
            checkCu(cuEventGroupCreate(ctx, &grp), "group create");
            checkCu(cuEventGroupAddAllEvents(grp), "group select");
            checkCu(cuEventGroupEnable(grp), "group enable");
        }
        auto wl = workloads::makeSpecWorkload(name);
        wl->run(size);
        res.cycles = deviceTotalStats().cycles;
        if (collect)
            checkCu(cuEventGroupReadEvent(grp, "inst_executed",
                                          &res.inst_executed),
                    "group read");
    });
    auto t1 = std::chrono::steady_clock::now();
    res.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    workloads::ProblemSize size = smoke ? workloads::ProblemSize::Test
                                        : workloads::ProblemSize::Large;

    std::printf("Hardware-counter collection overhead (all event "
                "groups enabled, host wall-clock)\n");
    std::printf("%-10s %10s %10s %9s %14s %12s\n", "workload",
                "off_ms", "on_ms", "overhead", "inst_executed",
                "cycles_delta");

    double ratio_sum = 0.0;
    size_t n = 0;
    uint64_t delta_sum = 0;
    std::vector<bench::JsonRow> rows;
    for (const std::string &name : workloads::specSuiteNames()) {
        RunResult off = runOnce(name, size, false);
        RunResult on = runOnce(name, size, true);

        double ratio = on.wall_ms / off.wall_ms;
        uint64_t delta = on.cycles > off.cycles
                             ? on.cycles - off.cycles
                             : off.cycles - on.cycles;
        std::printf("%-10s %9.2f %9.2f %8.3fx %14llu %12llu\n",
                    name.c_str(), off.wall_ms, on.wall_ms, ratio,
                    static_cast<unsigned long long>(on.inst_executed),
                    static_cast<unsigned long long>(delta));
        rows.push_back(
            {{"workload", bench::jStr(name)},
             {"off_ms", bench::jNum(off.wall_ms)},
             {"on_ms", bench::jNum(on.wall_ms)},
             {"overhead", bench::jNum(ratio)},
             {"inst_executed", bench::jNum(on.inst_executed)},
             {"cycles_delta", bench::jNum(delta)}});
        ratio_sum += ratio;
        delta_sum += delta;
        ++n;
    }
    std::printf("%-10s %31.3fx\n", "mean",
                ratio_sum / static_cast<double>(n));
    if (delta_sum != 0)
        std::printf("WARNING: counter collection changed simulated "
                    "cycles (delta_sum %llu) — it must be passive\n",
                    static_cast<unsigned long long>(delta_sum));
    bench::writeBenchJson(
        "fig_counter_overhead", "workloads", rows,
        {{"mean_overhead",
          bench::jNum(ratio_sum / static_cast<double>(n))},
         {"cycles_delta_sum", bench::jNum(delta_sum)},
         {"problem_size", bench::jStr(smoke ? "test" : "large")}});
    return delta_sum == 0 ? 0 : 1;
}
