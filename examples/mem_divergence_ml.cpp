/**
 * @file
 * Paper Section 6.1: memory-access address divergence of ML workloads,
 * with the pre-compiled libraries instrumented vs excluded.
 *
 * Excluding the libraries reproduces what a compiler-based tool (which
 * cannot see cuBLAS/cuDNN code) would measure — and considerably
 * overestimates the divergence, as in Figure 6.
 */
#include <cstdio>
#include <set>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "tools/mem_divergence.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

int
main()
{
    std::printf("Average 32B sectors requested per warp-level global "
                "memory instruction\n");
    std::printf("%-12s %14s %14s %18s\n", "workload", "libs on",
                "libs off", "instrs in libs %");

    for (const std::string &name : workloads::mlSuiteNames()) {
        double div_with = 0.0, div_without = 0.0, lib_share = 0.0;

        for (bool include_libs : {true, false}) {
            tools::MemDivergenceTool tool;
            runApp(tool, [&] {
                checkCu(cuInit(0), "cuInit");
                CUcontext ctx;
                checkCu(cuCtxCreate(&ctx, 0, 0), "cuCtxCreate");
                auto wl = workloads::makeMlWorkload(name);

                // Exclude library functions, mimicking a compiler-based
                // tool without library source access.
                if (!include_libs) {
                    auto *wlp = wl.get();
                    tool.setFunctionFilter([wlp](CUfunction f) {
                        for (CUmodule m : wlp->libraryModules())
                            if (f->mod == m)
                                return false;
                        return true;
                    });
                }
                wl->run(workloads::ProblemSize::Medium);

                if (include_libs) {
                    uint64_t lib = 0;
                    for (const auto &[mod, st] : perModuleStats()) {
                        for (CUmodule m : wl->libraryModules())
                            if (mod == m)
                                lib += st.thread_instrs;
                    }
                    lib_share =
                        100.0 * static_cast<double>(lib) /
                        static_cast<double>(
                            deviceTotalStats().thread_instrs);
                    div_with = tool.divergence();
                } else {
                    div_without = tool.divergence();
                }
            });
        }
        std::printf("%-12s %14.3f %14.3f %17.1f%%\n", name.c_str(),
                    div_with, div_without, lib_share);
    }
    std::printf("\nNote: 'libs off' reproduces a compiler-based tool's "
                "view; it misses the coalesced library kernels and so "
                "overestimates divergence (paper Fig. 6).\n");
    return 0;
}
