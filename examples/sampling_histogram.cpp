/**
 * @file
 * Paper Section 6.2: instruction histogram with kernel sampling.
 *
 * Runs one benchmark three ways — native, fully instrumented, and
 * sampled (instrumented once per unique grid configuration) — and
 * prints the Top-5 histogram, both slowdowns, and the sampling error.
 */
#include <cstdio>
#include <string>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "tools/opcode_histogram.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;
using tools::OpcodeHistogramTool;

namespace {

uint64_t
runOnce(const std::string &wl_name, OpcodeHistogramTool *tool,
        tools::OpcodeCounts *counts_out, uint64_t *inst_launches,
        uint64_t *total_launches)
{
    uint64_t cycles = 0;
    auto app = [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(wl_name);
        wl->run(workloads::ProblemSize::Medium);
        cycles = deviceTotalStats().cycles;
        if (tool && counts_out)
            *counts_out = tool->counts();
        if (tool && inst_launches)
            *inst_launches = tool->instrumentedLaunches();
        if (tool && total_launches)
            *total_launches = tool->totalLaunches();
    };
    if (tool) {
        runApp(*tool, app);
    } else {
        NvbitTool passive;
        runApp(passive, app);
    }
    return cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string wl = argc > 1 ? argv[1] : "palm";

    uint64_t native_cycles = runOnce(wl, nullptr, nullptr, nullptr,
                                     nullptr);

    OpcodeHistogramTool full(OpcodeHistogramTool::Mode::Full);
    tools::OpcodeCounts exact{};
    uint64_t full_cycles =
        runOnce(wl, &full, &exact, nullptr, nullptr);

    OpcodeHistogramTool sampled(OpcodeHistogramTool::Mode::SampleGridDim);
    tools::OpcodeCounts approx{};
    uint64_t inst = 0, total = 0;
    uint64_t sampled_cycles = runOnce(wl, &sampled, &approx, &inst,
                                      &total);

    std::printf("workload: %s\n", wl.c_str());
    std::printf("Top-5 executed instructions (sampled histogram):\n");
    uint64_t sum = 0;
    for (uint64_t v : approx)
        sum += v;
    size_t rank = 1;
    for (const auto &[name, count] : sampled.topN(5)) {
        std::printf("  %zu. %-8s %12llu (%.1f%%)\n", rank++,
                    name.c_str(),
                    static_cast<unsigned long long>(count),
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(sum));
    }

    std::printf("\nlaunches: %llu total, %llu instrumented under "
                "sampling\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(inst));
    std::printf("slowdown vs native:  full %.1fx, sampling %.2fx "
                "(simulated cycles)\n",
                static_cast<double>(full_cycles) /
                    static_cast<double>(native_cycles),
                static_cast<double>(sampled_cycles) /
                    static_cast<double>(native_cycles));
    std::printf("sampling error: %.4f%% (mean abs per-opcode share "
                "difference)\n",
                OpcodeHistogramTool::shareErrorPct(exact, approx));
    return 0;
}
