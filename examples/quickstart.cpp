/**
 * @file
 * Quickstart: the paper's Listing 1 flow end to end.
 *
 * An instruction-counting NVBit tool is injected into an application
 * (the in-process equivalent of LD_PRELOADing the tool's .so); the
 * application runs a vector-add kernel; at termination the tool prints
 * the number of thread-level instructions the kernel executed.
 */
#include <cstdio>
#include <vector>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "tools/instr_count.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

const char *kVecAddPtx = R"(
.visible .entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C,
                       .param .u32 n)
{
    .reg .u32 %r<8>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mad.lo.u32 %r4, %r1, %r2, %tid.x;
    ld.param.u32 %r5, [n];
    setp.ge.u32 %p1, %r4, %r5;
    @%p1 bra DONE;
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    mul.wide.u32 %rd4, %r4, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];
    add.u64 %rd6, %rd2, %rd4;
    ld.global.f32 %f2, [%rd6];
    add.f32 %f3, %f1, %f2;
    add.u64 %rd7, %rd3, %rd4;
    st.global.f32 [%rd7], %f3;
DONE:
    exit;
}
)";

/** The "application": an ordinary CUDA-driver-API program. */
void
appMain()
{
    checkCu(cuInit(0), "cuInit");
    CUcontext ctx;
    checkCu(cuCtxCreate(&ctx, 0, 0), "cuCtxCreate");
    CUmodule mod;
    checkCu(cuModuleLoadData(&mod, kVecAddPtx, 0), "cuModuleLoadData");
    CUfunction vecadd;
    checkCu(cuModuleGetFunction(&vecadd, mod, "vecadd"),
            "cuModuleGetFunction");

    const uint32_t n = 65536;
    std::vector<float> a(n, 1.5f), b(n, 2.25f), c(n);
    CUdeviceptr da, db, dc;
    checkCu(cuMemAlloc(&da, n * 4), "cuMemAlloc");
    checkCu(cuMemAlloc(&db, n * 4), "cuMemAlloc");
    checkCu(cuMemAlloc(&dc, n * 4), "cuMemAlloc");
    checkCu(cuMemcpyHtoD(da, a.data(), n * 4), "cuMemcpyHtoD");
    checkCu(cuMemcpyHtoD(db, b.data(), n * 4), "cuMemcpyHtoD");

    void *params[] = {&da, &db, &dc, const_cast<uint32_t *>(&n)};
    checkCu(cuLaunchKernel(vecadd, (n + 127) / 128, 1, 1, 128, 1, 1, 0,
                           nullptr, params, nullptr),
            "cuLaunchKernel");
    checkCu(cuMemcpyDtoH(c.data(), dc, n * 4), "cuMemcpyDtoH");

    std::printf("app: c[0] = %.2f (expected 3.75), %u elements\n", c[0],
                n);
}

} // namespace

int
main()
{
    tools::InstrCountTool tool;
    runApp(tool, [&] {
        appMain();
        // The tool reads its device counters while the context lives.
        std::printf("tool: kernel executed %llu thread-level "
                    "instructions (%llu warp-level)\n",
                    static_cast<unsigned long long>(tool.threadInstrs()),
                    static_cast<unsigned long long>(tool.warpInstrs()));
        const JitStats &js = nvbit_get_jit_stats();
        std::printf("tool: JIT overhead %.3f ms (%llu trampolines, "
                    "%llu bytes swapped)\n",
                    js.totalNs() / 1e6,
                    static_cast<unsigned long long>(
                        js.trampolines_generated),
                    static_cast<unsigned long long>(js.swap_bytes));
    });
    return 0;
}
