/**
 * @file
 * Paper Section 6.1: "Entire cache simulators can be built around
 * these mechanisms."
 *
 * The mem-trace tool streams every global-memory address of a workload
 * to the host over the NVBit channel (obs::ChannelHost consumer
 * thread), which feeds a configurable set-associative cache model and
 * reports hit rates for several cache sizes — a trace-driven cache
 * design-space sweep over an unmodified binary.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "sim/cache.hpp"
#include "tools/mem_trace.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

struct SweepPoint {
    sim::CacheConfig cfg;
    uint64_t hits = 0;
    uint64_t accesses = 0;
    std::unique_ptr<sim::Cache> cache;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string wl_name = argc > 1 ? argv[1] : "miniGhost";

    std::vector<SweepPoint> sweep;
    for (size_t kb : {16, 32, 64, 128, 256}) {
        SweepPoint p;
        p.cfg = {kb * 1024, 4, 128};
        p.cache = std::make_unique<sim::Cache>(p.cfg);
        sweep.push_back(std::move(p));
    }

    tools::MemTraceTool tool(1 << 20,
                             tools::MemTraceTool::Transport::Channel);
    tool.setConsumer([&](const std::vector<uint64_t> &addrs) {
        for (uint64_t a : addrs) {
            for (SweepPoint &p : sweep) {
                ++p.accesses;
                if (p.cache->access(a & ~uint64_t{127}))
                    ++p.hits;
            }
        }
    });

    runApp(tool, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "ctx");
        auto wl = workloads::makeSpecWorkload(wl_name);
        wl->run(workloads::ProblemSize::Medium);
    });

    std::printf("trace-driven cache sweep over '%s' "
                "(%llu accesses traced, %llu dropped)\n",
                wl_name.c_str(),
                static_cast<unsigned long long>(tool.recorded()),
                static_cast<unsigned long long>(tool.dropped()));
    std::printf("%10s %8s %12s\n", "size", "assoc", "hit rate");
    for (SweepPoint &p : sweep) {
        std::printf("%7zu KiB %8u %11.2f%%\n",
                    p.cfg.size_bytes / 1024, p.cfg.assoc,
                    p.accesses
                        ? 100.0 * static_cast<double>(p.hits) /
                              static_cast<double>(p.accesses)
                        : 0.0);
    }
    return 0;
}
