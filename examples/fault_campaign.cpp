/**
 * @file
 * SASSIFI-style fault-injection campaign (paper Section 1 cites fault
 * injection as a flagship NVBit use case).
 *
 * A small saxpy-with-loop kernel is swept with single-bit flips in the
 * destination registers of three opcode classes:
 *   - FADD: the accumulating float add (data faults -> masked / SDC),
 *   - IADD: address arithmetic and the loop counter (faults -> SDC or
 *     out-of-bounds traps, i.e. DUEs),
 *   - LDC:  parameter loads (pointer faults -> DUEs; flipping a high
 *     bit of the loop bound -> watchdog timeout).
 *
 * Each injection is a fresh tool-injected run; the campaign runner
 * resets the device between injections, classifies every outcome as
 * masked / SDC / DUE / timeout, and emits a JSON report.
 */
#include <cstdio>
#include <fstream>
#include <vector>

#include "driver/api.hpp"
#include "tools/fault_injection.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;
using nvbit::tools::FaultCampaignRunner;
using nvbit::tools::FaultOutcome;

namespace {

const char *kKernelPtx = R"(
.visible .entry fc(.param .u64 A, .param .u64 B, .param .u32 n,
                   .param .u32 iters)
{
    .reg .u32 %r<10>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<3>;
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mad.lo.u32 %r4, %r1, %r2, %tid.x;
    ld.param.u32 %r5, [n];
    setp.ge.u32 %p1, %r4, %r5;
    @%p1 bra DONE;
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    mul.wide.u32 %rd4, %r4, 4;
    add.u64 %rd5, %rd1, %rd4;
    add.u64 %rd6, %rd2, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.param.u32 %r6, [iters];
    mov.u32 %r7, 0;
LOOP:
    add.f32 %f1, %f1, 0f3DCCCCCD;
    add.u32 %r7, %r7, 1;
    setp.lt.u32 %p2, %r7, %r6;
    @%p2 bra LOOP;
    st.global.f32 [%rd6], %f1;
DONE:
    exit;
}
)";

/**
 * The application under test.  It must tolerate launch failures (a
 * fault campaign expects them): the worst CUresult is reported instead
 * of aborting, and the observable output is returned for golden
 * comparison.
 */
FaultCampaignRunner::AppResult
appMain()
{
    FaultCampaignRunner::AppResult res;
    auto cu = [&res](CUresult r) {
        if (r != CUDA_SUCCESS && res.status == CUDA_SUCCESS)
            res.status = r;
        return r;
    };
    if (cu(cuInit(0)) != CUDA_SUCCESS)
        return res;
    CUcontext ctx;
    if (cu(cuCtxCreate(&ctx, 0, 0)) != CUDA_SUCCESS)
        return res;
    CUmodule mod;
    if (cu(cuModuleLoadData(&mod, kKernelPtx, 0)) != CUDA_SUCCESS)
        return res;
    CUfunction fn;
    cu(cuModuleGetFunction(&fn, mod, "fc"));

    const uint32_t n = 256, iters = 8;
    std::vector<float> a(n);
    for (uint32_t i = 0; i < n; ++i)
        a[i] = 0.25f * static_cast<float>(i);
    CUdeviceptr da = 0, db = 0;
    cu(cuMemAlloc(&da, n * 4));
    cu(cuMemAlloc(&db, n * 4));
    cu(cuMemcpyHtoD(da, a.data(), n * 4));

    void *params[] = {&da, &db, const_cast<uint32_t *>(&n),
                      const_cast<uint32_t *>(&iters)};
    cu(cuLaunchKernel(fn, 2, 1, 1, 128, 1, 1, 0, nullptr, params,
                      nullptr));

    res.output.resize(n * 4);
    if (cu(cuMemcpyDtoH(res.output.data(), db, n * 4)) != CUDA_SUCCESS)
        res.output.clear(); // poisoned context: no observable output
    return res;
}

tools::CampaignReport
sweep(const char *prefix, std::vector<uint32_t> bits,
      std::vector<uint32_t> occurrences)
{
    FaultCampaignRunner::Config cfg;
    cfg.opcode_prefix = prefix;
    cfg.bits = std::move(bits);
    cfg.occurrences = std::move(occurrences);
    cfg.watchdog_cycles = 2000000; // runaway loops -> timeout class
    tools::CampaignReport rep = FaultCampaignRunner(cfg).run(appMain);
    std::printf("%-5s %2u sites, %3zu injections: masked=%zu sdc=%zu "
                "due=%zu timeout=%zu\n",
                prefix, rep.sites, rep.injections.size(),
                rep.countOf(FaultOutcome::Masked),
                rep.countOf(FaultOutcome::SDC),
                rep.countOf(FaultOutcome::DUE),
                rep.countOf(FaultOutcome::Timeout));
    return rep;
}

} // namespace

int
main(int argc, char **argv)
{
    // Data faults: only the stored values can change.
    tools::CampaignReport rep =
        sweep("FADD", {0, 5, 12, 22, 30, 31}, {0, 7});
    // Address arithmetic + loop counter: SDCs and traps.
    tools::CampaignReport r2 = sweep("IADD", {4, 12, 30, 31}, {0, 9});
    // Parameter loads: pointer faults and a runaway loop bound.
    tools::CampaignReport r3 = sweep("LDC", {30}, {0, 1});

    rep.sites += r2.sites + r3.sites;
    rep.injections.insert(rep.injections.end(), r2.injections.begin(),
                          r2.injections.end());
    rep.injections.insert(rep.injections.end(), r3.injections.begin(),
                          r3.injections.end());

    std::printf("total %zu injections: masked=%zu sdc=%zu due=%zu "
                "timeout=%zu\n",
                rep.injections.size(),
                rep.countOf(FaultOutcome::Masked),
                rep.countOf(FaultOutcome::SDC),
                rep.countOf(FaultOutcome::DUE),
                rep.countOf(FaultOutcome::Timeout));

    const char *path =
        argc > 1 ? argv[1] : "fault_campaign_report.json";
    std::ofstream out(path);
    out << rep.toJson();
    std::printf("report written to %s\n", path);
    return 0;
}
