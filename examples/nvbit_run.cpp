/**
 * @file
 * nvbit_run — general launcher: run any bundled workload under any
 * bundled NVBit tool (the ergonomic equivalent of
 * `LD_PRELOAD=libtool.so ./app`).
 *
 * Usage:
 *   nvbit_run [--tool none|icount|icount-bb|mdiv|ohist|ohist-sample|
 *              bbv|pcsamp|kprof]
 *             [--size test|medium|large] [--bbv-out PREFIX]
 *             [--pcsamp-period N] [--pcsamp-out PREFIX]
 *             [--kprof-out PREFIX] [--kprof-diff icount|mdiv] [--list]
 *             WORKLOAD
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/nvbit.hpp"
#include "driver/api.hpp"
#include "driver/internal.hpp"
#include "tools/bbv_profiler.hpp"
#include "tools/instr_count.hpp"
#include "tools/kernel_profiler.hpp"
#include "tools/mem_divergence.hpp"
#include "tools/opcode_histogram.hpp"
#include "tools/pc_sampling.hpp"
#include "workloads/workloads.hpp"

using namespace nvbit;
using namespace nvbit::cudrv;

namespace {

int
listWorkloads()
{
    std::printf("SpecAccel-like suite:");
    for (const auto &n : workloads::specSuiteNames())
        std::printf(" %s", n.c_str());
    std::printf("\nML suite:");
    for (const auto &n : workloads::mlSuiteNames())
        std::printf(" %s", n.c_str());
    std::printf("\n");
    return 0;
}

std::unique_ptr<workloads::Workload>
makeWorkload(const std::string &name)
{
    for (const auto &n : workloads::specSuiteNames())
        if (n == name)
            return workloads::makeSpecWorkload(name);
    for (const auto &n : workloads::mlSuiteNames())
        if (n == name)
            return workloads::makeMlWorkload(name);
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string tool_name = "icount";
    std::string size_name = "medium";
    std::string bbv_out = "bbv_profile";
    std::string pcsamp_out = "pcsamp_profile";
    std::string kprof_out = "kernel_profile";
    std::string kprof_diff; // empty = off; "icount" or "mdiv"
    uint64_t pcsamp_period = 1000;
    std::string wl_name;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list")
            return listWorkloads();
        if (arg == "--tool" && i + 1 < argc) {
            tool_name = argv[++i];
        } else if (arg == "--size" && i + 1 < argc) {
            size_name = argv[++i];
        } else if (arg == "--bbv-out" && i + 1 < argc) {
            bbv_out = argv[++i];
        } else if (arg == "--pcsamp-out" && i + 1 < argc) {
            pcsamp_out = argv[++i];
        } else if (arg == "--pcsamp-period" && i + 1 < argc) {
            pcsamp_period = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--kprof-out" && i + 1 < argc) {
            kprof_out = argv[++i];
        } else if (arg == "--kprof-diff" && i + 1 < argc) {
            kprof_diff = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "usage: nvbit_run [--tool none|icount|"
                         "icount-bb|mdiv|ohist|ohist-sample|bbv|"
                         "pcsamp|kprof] [--size test|medium|large] "
                         "[--bbv-out PREFIX] [--pcsamp-period N] "
                         "[--pcsamp-out PREFIX] [--kprof-out PREFIX] "
                         "[--kprof-diff icount|mdiv] [--list] "
                         "WORKLOAD\n");
            return 2;
        } else {
            wl_name = arg;
        }
    }
    if (wl_name.empty()) {
        std::fprintf(stderr, "nvbit_run: no workload given "
                             "(try --list)\n");
        return 2;
    }

    workloads::ProblemSize size = workloads::ProblemSize::Medium;
    if (size_name == "test")
        size = workloads::ProblemSize::Test;
    else if (size_name == "large")
        size = workloads::ProblemSize::Large;

    if (!kprof_diff.empty()) {
        tools::DifferentialMode mode;
        if (kprof_diff == "icount") {
            mode = tools::DifferentialMode::InstrCount;
        } else if (kprof_diff == "mdiv") {
            mode = tools::DifferentialMode::MemDivergence;
        } else {
            std::fprintf(stderr, "unknown --kprof-diff mode '%s' "
                                 "(icount|mdiv)\n",
                         kprof_diff.c_str());
            return 2;
        }
        tools::DifferentialResult res =
            tools::runKprofDifferential(mode, [&] {
                checkCu(cuInit(0), "cuInit");
                CUcontext ctx;
                checkCu(cuCtxCreate(&ctx, 0, 0), "cuCtxCreate");
                makeWorkload(wl_name)->run(size);
            });
        std::printf("kprof differential (%s) on %s (%s):\n",
                    kprof_diff.c_str(), wl_name.c_str(),
                    size_name.c_str());
        for (const auto &r : res.rows)
            std::printf("  %-58s tool=%llu counters=%llu  %s\n",
                        r.quantity.c_str(),
                        static_cast<unsigned long long>(r.tool_value),
                        static_cast<unsigned long long>(r.counter_value),
                        r.match ? "MATCH" : "MISMATCH");
        std::printf("kprof differential: %s\n",
                    res.all_match ? "PASS" : "FAIL");
        return res.all_match ? 0 : 1;
    }

    std::unique_ptr<NvbitTool> tool;
    tools::InstrCountTool *icount = nullptr;
    tools::MemDivergenceTool *mdiv = nullptr;
    tools::OpcodeHistogramTool *ohist = nullptr;
    tools::BbvProfiler *bbv = nullptr;
    tools::PcSamplingTool *pcsamp = nullptr;
    tools::KernelProfilerTool *kprof = nullptr;
    if (tool_name == "none") {
        tool = std::make_unique<NvbitTool>();
    } else if (tool_name == "icount") {
        auto t = std::make_unique<tools::InstrCountTool>();
        icount = t.get();
        tool = std::move(t);
    } else if (tool_name == "icount-bb") {
        auto t = std::make_unique<tools::InstrCountTool>(
            tools::InstrCountTool::Mode::PerBasicBlock);
        icount = t.get();
        tool = std::move(t);
    } else if (tool_name == "mdiv") {
        auto t = std::make_unique<tools::MemDivergenceTool>();
        mdiv = t.get();
        tool = std::move(t);
    } else if (tool_name == "ohist" || tool_name == "ohist-sample") {
        auto t = std::make_unique<tools::OpcodeHistogramTool>(
            tool_name == "ohist"
                ? tools::OpcodeHistogramTool::Mode::Full
                : tools::OpcodeHistogramTool::Mode::SampleGridDim);
        ohist = t.get();
        tool = std::move(t);
    } else if (tool_name == "bbv") {
        tools::BbvProfiler::Options opts;
        opts.output_prefix = bbv_out;
        auto t = std::make_unique<tools::BbvProfiler>(opts);
        bbv = t.get();
        tool = std::move(t);
    } else if (tool_name == "pcsamp") {
        tools::PcSamplingTool::Options opts;
        opts.period = pcsamp_period;
        opts.output_prefix = pcsamp_out;
        auto t = std::make_unique<tools::PcSamplingTool>(opts);
        pcsamp = t.get();
        tool = std::move(t);
    } else if (tool_name == "kprof") {
        tools::KernelProfilerTool::Options opts;
        opts.output_prefix = kprof_out;
        auto t = std::make_unique<tools::KernelProfilerTool>(opts);
        kprof = t.get();
        tool = std::move(t);
    } else {
        std::fprintf(stderr, "unknown tool '%s'\n", tool_name.c_str());
        return 2;
    }

    runApp(*tool, [&] {
        checkCu(cuInit(0), "cuInit");
        CUcontext ctx;
        checkCu(cuCtxCreate(&ctx, 0, 0), "cuCtxCreate");
        auto wl = makeWorkload(wl_name);
        wl->run(size);

        const sim::LaunchStats &st = deviceTotalStats();
        std::printf("workload %s (%s): %llu thread instrs, "
                    "%llu cycles (simulated)\n",
                    wl_name.c_str(), size_name.c_str(),
                    static_cast<unsigned long long>(st.thread_instrs),
                    static_cast<unsigned long long>(st.cycles));

        if (icount) {
            std::printf("icount: %llu thread-level, %llu warp-level "
                        "instructions\n",
                        static_cast<unsigned long long>(
                            icount->threadInstrs()),
                        static_cast<unsigned long long>(
                            icount->warpInstrs()));
        }
        if (mdiv) {
            std::printf("mdiv: %.3f avg 32B sectors per warp-level "
                        "global memory instruction (%llu accesses)\n",
                        mdiv->divergence(),
                        static_cast<unsigned long long>(
                            mdiv->memInstrs()));
        }
        if (ohist) {
            std::printf("ohist: top-5 of %llu/%llu instrumented "
                        "launches\n",
                        static_cast<unsigned long long>(
                            ohist->instrumentedLaunches()),
                        static_cast<unsigned long long>(
                            ohist->totalLaunches()));
            for (const auto &[op, cnt] : ohist->topN(5))
                std::printf("  %-8s %12llu\n", op.c_str(),
                            static_cast<unsigned long long>(cnt));
        }
        if (bbv) {
            std::printf("bbv: %zu static blocks, %zu intervals -> "
                        "%s.bb / %s.bbmap\n",
                        bbv->blocks().size(), bbv->intervals().size(),
                        bbv_out.c_str(), bbv_out.c_str());
        }
        if (kprof) {
            std::printf("%s", kprof->report().c_str());
            std::printf("kprof: %zu kernels -> %s.txt / %s.json\n",
                        kprof->kernels().size(), kprof_out.c_str(),
                        kprof_out.c_str());
        }
        if (pcsamp) {
            std::printf("%s", pcsamp->report().c_str());
            std::printf("pcsamp: %llu samples -> %s.txt / %s.folded "
                        "/ %s.json\n",
                        static_cast<unsigned long long>(
                            pcsamp->totalSamples()),
                        pcsamp_out.c_str(), pcsamp_out.c_str(),
                        pcsamp_out.c_str());
        }
        const JitStats &js = nvbit_get_jit_stats();
        std::printf("JIT: %.3f ms total (%llu trampolines, %llu "
                    "functions)\n",
                    js.totalNs() / 1e6,
                    static_cast<unsigned long long>(
                        js.trampolines_generated),
                    static_cast<unsigned long long>(
                        js.functions_instrumented));
    });
    return 0;
}
